#include "core/node.h"

#include <cassert>

#include "common/gf256.h"
#include "disk/site_storage.h"
#include "net/transport.h"
#include "net/wire.h"

namespace radd {

// ===========================================================================
// Node: per-site server state.
// ===========================================================================

struct RaddNodeSystem::Node {
  RaddNodeSystem* sys;
  SiteId self;
  LockManager locks;
  /// Parity updates and spare writes awaiting our local disk; keyed by op
  /// for ack bookkeeping.
  std::map<uint64_t, uint64_t> parity_timers;  // op -> sim timer id

  // Pending server-side flows that needed a lock.
  struct Waiting {
    std::function<void()> resume;
  };
  std::map<TxnId, Waiting> waiting;

  // Client operations issued from this site. Living in the Node keeps
  // them confined to the site's simulator shard (every reply and timer
  // for an op fires at its client site).
  std::map<uint64_t, PendingRead> reads;
  std::map<uint64_t, PendingWrite> writes;
  /// Per-site op-id counter for sharded runs (see NewOpId).
  uint64_t next_local_op = 1;

  explicit Node(RaddNodeSystem* s, SiteId id) : sys(s), self(id) {}

  Site* site() { return sys->cluster_->site(self); }
  BlockStore* store() { return site()->store(); }
  const DiskModel& disk() const { return model; }
  Simulator* sim() { return sys->sim_; }

  /// This site's slice of each group it belongs to: member index and the
  /// logical drive's block offset (group-local row r lives at physical
  /// block first_block + r). member == -1 when the site is not in the
  /// group.
  struct Local {
    int member = -1;
    BlockNum first_block = 0;
  };
  std::vector<Local> locals;

  RaddGroup* grp(int g) { return sys->groups_[static_cast<size_t>(g)].get(); }
  const PlacementMap& lay(int g) { return grp(g)->layout(); }
  /// Physical block on this site holding group `g`'s row `row`. Under the
  /// rotated layout the address is the row itself; declustered tables
  /// permute it, and during expansion a row's block may have moved here.
  BlockNum phys(int g, BlockNum row) {
    const auto& local = locals[static_cast<size_t>(g)];
    return local.first_block +
           lay(g).AddressOf(static_cast<SiteId>(local.member), row);
  }
  /// True when this node plays the Q-parity role for (group, row) — only
  /// possible in a dual-parity layout.
  bool IsQParityRowHere(int g, BlockNum row) {
    if (!lay(g).dual_parity()) return false;
    int me = locals[static_cast<size_t>(g)].member;
    return me >= 0 &&
           lay(g).RoleOf(static_cast<SiteId>(me), row) == BlockRole::kParityQ;
  }
  /// This node's role in (group, row): kNone when the site is not in the
  /// group or (declustered) the row's stripe does not touch it. Every
  /// handler checks its expected role *before* the first phys() — under a
  /// table layout, AddressOf is undefined for a non-participant, and after
  /// an expansion move a message routed under the old tables must be
  /// bounced (StaleEpoch) so the sender re-resolves, not applied to
  /// whatever block now sits at the stale address.
  BlockRole RoleHere(int g, BlockNum row) {
    const int me = locals[static_cast<size_t>(g)].member;
    if (me < 0) return BlockRole::kNone;
    return lay(g).RoleOf(static_cast<SiteId>(me), row);
  }
  /// Counts and reports a message that reached a member whose layout role
  /// no longer matches (dead code under the rotated layout).
  Status Misroute(const char* what) {
    sys->stats_.Add("node.layout_misroute");
    return Status::StaleEpoch(what);
  }

  /// This site's effective disk latency model (the NodeConfig default or
  /// its per-site override), set once at construction.
  DiskModel model;
  /// The modeled disk subsystem (spindle queues + block cache); null in
  /// the default configuration, where the closed-form clock below stands
  /// in — taking the exact legacy code path keeps the stock event
  /// sequence bit-identical, not merely the completion times.
  std::unique_ptr<SiteStorage> storage;
  /// Legacy clock: the site's disk serves one request at a time,
  /// operations queue behind each other (this is what makes parity-site
  /// contention — the §2 striping argument — observable).
  SimTime disk_free_at = 0;
  /// Gray-failure multiplier on disk service time (1 = healthy).
  uint32_t disk_slow = 1;
  /// Bumped by ResetNodeVolatileState; disk completions queued before a
  /// crash belong to the dead incarnation and must not touch the store.
  uint64_t epoch = 0;
  /// Charges a disk I/O of `units` block operations of `kind` at `addr`
  /// and runs `fn` when it completes. With modeled storage the request
  /// joins its spindle's queue under `cls`; otherwise it serializes on
  /// the closed-form site clock exactly as the pre-scheduler protocol
  /// did (the class is then irrelevant — the clock is strict FIFO).
  void ScheduleDisk(IoClass cls, IoKind kind, BlockNum addr, uint32_t units,
                    Simulator::Callback fn) {
    auto guarded = [this, e = epoch, fn = std::move(fn)]() mutable {
      if (e != epoch) return;
      fn();
    };
    if (storage != nullptr) {
      storage->Submit(cls, kind, addr, units, disk_slow,
                      std::move(guarded));
      return;
    }
    const SimTime latency =
        (kind == IoKind::kRead ? model.read_latency : model.write_latency) *
        static_cast<SimTime>(units);
    SimTime start = std::max(sim()->Now(), disk_free_at);
    disk_free_at = start + latency * disk_slow;
    sim()->At(disk_free_at, std::move(guarded));
  }

  // --- block cache (modeled storage only) ---------------------------------
  BlockCache* cache() { return storage ? storage->cache() : nullptr; }
  /// Write-through: keep the cache coherent with a local write we just
  /// performed (the entry is re-validated against the store on every hit
  /// anyway; this only preserves hit ratio across our own writes).
  void CacheUpdate(BlockNum addr, const Block& data, Uid uid) {
    if (BlockCache* c = cache()) c->Insert(addr, data, uid);
  }
  /// Eager invalidation on local mutations the cache cannot mirror
  /// (spare records, parity masks, invalidations).
  void CacheInvalidate(BlockNum addr) {
    if (BlockCache* c = cache()) c->Invalidate(addr);
  }

  /// Lock ids: inverted op ids so later ops always wait (single-block
  /// operations cannot deadlock; FIFO queueing is all we need).
  static TxnId LockId(uint64_t op) { return ~op; }

  void WithLock(uint64_t op, BlockNum block, LockMode mode,
                std::function<void()> body) {
    LockKey key{self, block};
    LockResult r = locks.Acquire(LockId(op), key, mode);
    if (r == LockResult::kGranted) {
      body();
      return;
    }
    sys->stats_.Add("node.lock_waits");
    waiting[LockId(op)] = Waiting{std::move(body)};
  }

  void Unlock(uint64_t op, BlockNum block) {
    for (TxnId granted : locks.Release(LockId(op), LockKey{self, block})) {
      auto it = waiting.find(granted);
      if (it == waiting.end()) continue;
      auto resume = std::move(it->second.resume);
      waiting.erase(it);
      resume();
    }
  }

  void Send(SiteId to, MessageType type, Payload payload,
            size_t wire_bytes) {
    Message m;
    m.from = self;
    m.to = to;
    m.type = type;
    m.wire_bytes = wire_bytes + kWireHeader;
    m.payload = std::move(payload);
    if (sys->transport_ != nullptr) {
      sys->transport_->Send(std::move(m));
    } else {
      sys->net_->Send(std::move(m));
    }
  }

  // --- message handlers ---------------------------------------------------

  void OnReadReq(Message& msg) {
    auto req = std::get<ReadReq>(msg.payload);
    const SiteId from = msg.from;
    if (RoleHere(req.group, req.row) != BlockRole::kData) {
      ReadReply rep;
      rep.op = req.op;
      rep.status = Misroute("read reached a non-data member");
      Send(from, MessageType::kReadReply, std::move(rep), 0);
      return;
    }
    const BlockNum prow = phys(req.group, req.row);
    WithLock(req.op, prow, LockMode::kShared, [this, req, from, prow]() {
      if (BlockCache* c = cache()) {
        if (const BlockCache::Entry* e = c->Lookup(prow)) {
          // §3.3 rule: a hit is served only when the cached UID still
          // matches the store's current record — the same UID-agreement
          // test recovery uses. UIDs name writes, so a match means the
          // cached bytes are the last write's bytes even if rebuilds or
          // drains touched the store behind us. The Peek is metadata-only
          // (the paper's free buffered check) and costs no disk time.
          Result<BlockRecord> cur = store()->Peek(prow);
          if (cur.ok() && cur->uid.valid() && cur->uid == e->uid) {
            c->CountHit();
            ReadReply rep;
            rep.op = req.op;
            rep.status = Status::OK();
            rep.data = e->data;
            rep.uid = e->uid;
            Unlock(req.op, prow);
            size_t wire = rep.data.size();
            Send(from, MessageType::kReadReply, std::move(rep), wire);
            return;
          }
          c->CountStale();
          c->Invalidate(prow);
        }
      }
      ScheduleDisk(IoClass::kForeground, IoKind::kRead, prow, 1,
                   [this, req, from, prow]() {
        ReadReply rep;
        rep.op = req.op;
        Result<BlockRecord> rec = store()->Read(prow);
        if (rec.ok()) {
          rep.status = Status::OK();
          rep.data = std::move(rec->data);
          rep.uid = rec->uid;
          // Fill on read: plain valid data blocks only (spare records
          // carry bookkeeping the cache does not model).
          if (rep.uid.valid() && rec->spare_for < 0) {
            CacheUpdate(prow, rep.data, rep.uid);
          }
        } else {
          rep.status = rec.status();
        }
        Unlock(req.op, prow);
        size_t wire = rep.status.ok() ? rep.data.size() : 0;
        Send(from, MessageType::kReadReply, std::move(rep), wire);
      });
    });
  }

  /// Write flows already seen, keyed by op id. nullopt while in flight;
  /// the final reply once done (so a retried request replays the answer
  /// instead of spawning a duplicate flow with a fresh UID).
  std::map<uint64_t, std::optional<WriteReply>> write_flows;

  /// Returns true when the request is a duplicate and was handled.
  bool DedupeWrite(uint64_t op, SiteId reply_to, MessageType reply_type) {
    auto it = write_flows.find(op);
    if (it == write_flows.end()) {
      write_flows[op] = std::nullopt;  // first sighting: mark in flight
      return false;
    }
    sys->stats_.Add("node.write_duplicate");
    if (it->second.has_value()) {
      Send(reply_to, reply_type, *it->second, 0);  // replay the reply
    }
    // else: the original flow is still running; its reply will come.
    return true;
  }

  void CompleteWrite(uint64_t op, SiteId reply_to, MessageType reply_type,
                     WriteReply reply) {
    write_flows[op] = reply;
    Send(reply_to, reply_type, std::move(reply), 0);
  }

  void OnWriteReq(Message& msg) {
    // Take the payload (it carries a full block): this delivery is its
    // final stop, so the flow below owns the buffer without a copy.
    WriteReq req = std::move(std::get<WriteReq>(msg.payload));
    const SiteId from = msg.from;
    if (DedupeWrite(req.op, from, MessageType::kWriteReply)) return;
    if (req.deadline != 0 && sim()->Now() > req.deadline) {
      // Zombie: a long-delayed retransmission of a write whose client has
      // provably given up. Applying it could roll the block back past a
      // newer acknowledged write.
      sys->stats_.Add("node.write_expired");
      sys->arena_.Return(std::move(req.data));
      return;
    }
    if (!sys->CheckMemberEpoch(req.group, req.home, req.home_epoch).ok()) {
      // The client stamped a view of this site that has since transitioned
      // (we cycled down -> recovering behind its back). No side effects
      // have happened, so forget the flow marker: the client's restamped
      // retry must start a fresh flow, not replay this rejection.
      sys->stats_.Add("node.stale_epoch_rejected");
      write_flows.erase(req.op);
      Send(from, MessageType::kWriteReply,
           WriteReply{req.op, Status::StaleEpoch("write epoch")}, 0);
      sys->arena_.Return(std::move(req.data));
      return;
    }
    if (RoleHere(req.group, req.row) != BlockRole::kData) {
      // An expansion moved this row's block off this member after the
      // client resolved its host. No side effects yet: drop the flow
      // marker so the client's re-resolved retry starts fresh.
      write_flows.erase(req.op);
      Send(from, MessageType::kWriteReply,
           WriteReply{req.op, Misroute("write reached a non-data member")},
           0);
      sys->arena_.Return(std::move(req.data));
      return;
    }
    SiteState state = site()->state();
    // A lost block at a recovering site is written through the spare; tell
    // the client to take the degraded path.
    if (state == SiteState::kRecovering &&
        !store()->Peek(phys(req.group, req.row)).ok()) {
      // Not a completed write: the client will redirect to the spare, so
      // forget the flow marker (the spare node dedupes the redirect).
      write_flows.erase(req.op);
      Send(from, MessageType::kWriteReply,
           WriteReply{req.op, Status::Unavailable("block lost")}, 0);
      return;
    }
    const uint64_t op = req.op;
    const BlockNum prow = phys(req.group, req.row);
    WithLock(op, prow, LockMode::kExclusive,
             [this, req = std::move(req), from]() mutable {
      if (site()->state() == SiteState::kRecovering) {
        // The spare may hold a newer value (writes we missed while down):
        // fetch-and-invalidate it for a correct parity delta.
        int sm = static_cast<int>(lay(req.group).SpareSite(req.row));
        SiteId spare_site = grp(req.group)->SiteOfMember(sm);
        Send(spare_site, MessageType::kSpareTakeReq,
             SpareTakeReq{req.op, req.group, req.home, req.row}, 0);
        // Continuation lives in OnSpareTakeReply via pending write state.
        sys->stats_.Add("node.recovering_spare_fetch");
        uint64_t op = req.op;
        pending_local_writes.emplace(op,
                                     PendingLocalWrite{std::move(req), from});
        // The spare can die between this request and its reply; without a
        // bound the flow would hold the row lock forever (and keep the
        // system from ever quiescing). Give up after the client's own
        // give-up horizon: by then nobody is waiting for this flow.
        sim()->Schedule(
            static_cast<SimTime>(sys->node_config_.max_retries + 1) * 4 *
                sys->node_config_.retry_timeout,
            [this, op]() {
              auto it = pending_local_writes.find(op);
              if (it == pending_local_writes.end()) return;
              sys->stats_.Add("node.spare_fetch_timeout");
              BlockNum prow =
                  phys(it->second.req.group, it->second.req.row);
              pending_local_writes.erase(it);
              write_flows.erase(op);
              Unlock(op, prow);
            });
        return;
      }
      ApplyLocalWrite(std::move(req), from, /*old_override=*/std::nullopt);
    });
  }

  struct PendingLocalWrite {
    WriteReq req;
    SiteId reply_to;
  };
  std::map<uint64_t, PendingLocalWrite> pending_local_writes;

  void OnSpareTakeReply(Message& msg) {
    auto& rep = std::get<SpareReadReply>(msg.payload);
    auto it = pending_local_writes.find(rep.op);
    if (it == pending_local_writes.end()) return;
    PendingLocalWrite plw = std::move(it->second);
    pending_local_writes.erase(it);
    std::optional<Block> old;
    if (rep.status.ok()) old = std::move(rep.data);
    ApplyLocalWrite(std::move(plw.req), plw.reply_to, std::move(old));
  }

  void ApplyLocalWrite(WriteReq req, SiteId reply_to,
                       std::optional<Block> old_override) {
    const BlockNum addr = phys(req.group, req.row);
    ScheduleDisk(IoClass::kForeground, IoKind::kWrite, addr, 1,
                 [this, req = std::move(req), reply_to,
                  old_override = std::move(old_override)]() mutable {
      // The old value lives only until the diff below: lease its buffer.
      Block old_value(0);
      const BlockNum prow = phys(req.group, req.row);
      if (old_override) {
        old_value = std::move(*old_override);
      } else {
        Result<BlockRecord> old = store()->Peek(prow);
        if (old.ok()) {
          old_value = std::move(old->data);
        } else if (old.status().IsDataLoss()) {
          // The old contents are unreadable (latent sector error, detected
          // corruption, dead disk) but parity still encodes them. Diffing
          // against a blank would shift parity by the lost contents, and
          // every later reconstruction of this row would return torn data.
          // Rebuild the delta base from peers first — same first-write
          // penalty the spare path pays in OnSpareWriteReq.
          sys->stats_.Add("node.write_old_reconstructed");
          const uint64_t op = req.op;
          const int g = req.group;
          const int home = req.home;
          const BlockNum row = req.row;
          StartReconstruction(
              op, g, home, row,
              [this, req = std::move(req), reply_to, prow](
                  Status st, Block base, Uid) mutable {
                if (!st.ok()) {
                  Unlock(req.op, prow);
                  CompleteWrite(req.op, reply_to, MessageType::kWriteReply,
                                WriteReply{req.op, st});
                  return;
                }
                ApplyLocalWrite(std::move(req), reply_to, std::move(base));
              });
          return;
        } else {
          old_value = sys->arena_.Lease();
        }
      }
      Uid uid = site()->uids()->Next();
      Status st = store()->Write(prow, req.data, uid);
      if (!st.ok()) {
        Unlock(req.op, prow);
        CompleteWrite(req.op, reply_to, MessageType::kWriteReply,
                      WriteReply{req.op, st});
        return;
      }
      CacheUpdate(prow, req.data, uid);
      Result<ChangeMask> mask = ChangeMask::Diff(old_value, req.data);
      sys->arena_.Return(std::move(old_value));
      // The payload outlives the local write: until the parity ack the
      // recovery sweep may rebuild this block from pre-update parity (disk
      // failure mid-flight), and the §5 ack promises durability, so the
      // commit check below must be able to re-assert the data.
      auto payload = std::make_shared<Block>(std::move(req.data));
      bool invalidate_spare = old_override.has_value();
      const uint64_t op = req.op;
      const int g = req.group;
      const int home = req.home;
      const BlockNum row = req.row;
      // Batched mode releases the row lock as soon as the local write and
      // its staged mask are in place: parity deltas for the same row
      // XOR-merge associatively (formula 1), so the next writer may chain
      // immediately and its delta coalesces into the same frame. The
      // client's completion still waits for the batch ack (§5's commit
      // condition). The recovering path keeps the lock until the ack
      // because it also invalidates the spare.
      const bool early_unlock =
          sys->node_config_.parity_batch.enabled && !invalidate_spare;
      SendParityUpdate(
          op, g, home, row, std::move(*mask), uid,
          [this, op, g, home, row, prow, uid, reply_to, invalidate_spare,
           early_unlock, payload]() {
            // §5 commit check: between the local write and the parity ack
            // the recovery sweep may have rebuilt this block from a
            // pre-update source (reconstruction from parity that had not
            // yet applied our delta, or a drain of the spare this flow
            // fetched). The parity now carries the update, so the ack is
            // honest only if the local copy does too.
            Result<BlockRecord> now = store()->Peek(prow);
            bool clobbered = false;
            if (!now.ok()) {
              clobbered = now.status().IsDataLoss();
            } else if (now->uid != uid) {
              // A same-site UID with a higher sequence is a later local
              // writer (batched mode releases the lock early) — leave it.
              // A foreign UID is drained spare content: stale only in the
              // recovering flow, where it is the value we superseded.
              clobbered = !now->uid.valid() ||
                          (now->uid.site() == self &&
                           now->uid.sequence() < uid.sequence()) ||
                          (now->uid.site() != self && invalidate_spare);
            }
            if (clobbered) {
              (void)store()->Write(prow, *payload, uid);
              CacheUpdate(prow, *payload, uid);
              sys->stats_.Add("node.write_reasserted");
            }
            sys->arena_.Return(std::move(*payload));
            if (invalidate_spare) {
              // The local copy is now authoritative (§3.2 side effect).
              Send(grp(g)->SiteOfMember(
                       static_cast<int>(lay(g).SpareSite(row))),
                   MessageType::kSpareInvalidate,
                   SpareTakeReq{op, g, home, row}, 0);
            }
            if (!early_unlock) Unlock(op, prow);
            CompleteWrite(op, reply_to, MessageType::kWriteReply,
                          WriteReply{op, Status::OK()});
          },
          [this, op, prow, reply_to, early_unlock, payload](Status st) {
            sys->arena_.Return(std::move(*payload));
            // Retransmission exhausted or parity nacked: release the lock
            // and surface the failure instead of holding the row hostage.
            if (!early_unlock) Unlock(op, prow);
            if (st.IsStaleEpoch()) {
              // Retryable and side-effect-free from the client's view —
              // its restamped retry must run a fresh flow, so don't record
              // this rejection in the dedupe table.
              write_flows.erase(op);
              Send(reply_to, MessageType::kWriteReply,
                   WriteReply{op, std::move(st)}, 0);
              return;
            }
            CompleteWrite(op, reply_to, MessageType::kWriteReply,
                          WriteReply{op, std::move(st)});
          });
      if (early_unlock) Unlock(op, prow);
    });
  }

  void OnSpareInvalidate(const Message& msg) {
    auto req = std::get<SpareTakeReq>(msg.payload);
    if (RoleHere(req.group, req.row) != BlockRole::kSpare) {
      // Fire-and-forget: a misrouted invalidation is simply dropped; the
      // spare's real host still carries the spare_for check.
      (void)Misroute("spare invalidate reached a non-spare member");
      return;
    }
    ScheduleDisk(IoClass::kRecovery, IoKind::kWrite,
                 phys(req.group, req.row), 1, [this, req]() {
      const BlockNum prow = phys(req.group, req.row);
      Result<BlockRecord> rec = store()->Peek(prow);
      if (rec.ok() && rec->spare_for == req.home) {
        (void)store()->Invalidate(prow);
        CacheInvalidate(prow);
        sys->stats_.Add("node.spare_invalidated");
      }
    });
  }

  /// Sends the W3 parity message, retransmitting until acked (§5). Calls
  /// `done` once acknowledged (or immediately if the parity site is down:
  /// its recovery will recompute the row). If retransmission is exhausted
  /// or the parity site nacks (stale epoch), calls `fail` with the cause
  /// so the write surfaces a retryable failure rather than hanging with
  /// its lock held.
  struct ParityWait {
    std::function<void()> done;
    std::function<void(Status)> fail;
    /// The pending update itself, kept so every (re)transmit can restamp
    /// the home's *current* membership epoch: a live sender always speaks
    /// for its current view, so only message copies left over from a dead
    /// incarnation (whose node state was reset, so nobody restamps them)
    /// are rejected as stale.
    ParityUpdate update;
    SiteId parity_site = 0;
  };
  std::map<uint64_t, ParityWait> parity_done;
  std::map<uint64_t, int> parity_tries;

  /// Q-leg marker bit for dual-parity ops. Op ids never reach bit 63
  /// (the global counter counts up from 1; sharded ids use site<<40), so
  /// the P and Q legs of one write occupy distinct slots in every op-keyed
  /// map while remaining trivially correlated for debugging.
  static constexpr uint64_t kQLegBit = uint64_t{1} << 63;

  /// Reissue marker for dual-parity spare-path updates. A write retried
  /// through the spare after its home crashed can reuse an op whose
  /// original parity legs already applied; the receiver's op-level dedupe
  /// would then silently drop the reissue even though it carries the new
  /// logical UID (and per-leg deltas). Bit 62 keeps the reissue distinct
  /// in every op-keyed map while the original op's entry still absorbs
  /// late duplicates of the first attempt.
  static constexpr uint64_t kReissueBit = uint64_t{1} << 62;

  void SendParityUpdate(uint64_t op, int g, int home, BlockNum row,
                        ChangeMask mask, Uid uid,
                        std::function<void()> done,
                        std::function<void(Status)> fail = nullptr) {
    if (!lay(g).dual_parity()) {
      SendParityLeg(op, g, home, row,
                    static_cast<int>(lay(g).ParitySite(row)), std::move(mask),
                    uid, std::move(done), std::move(fail));
      return;
    }
    // P+Q: the same raw delta ships to both parity sites (the Q site folds
    // in its GF(256) coefficient on apply, so the legs share one encoding).
    ChangeMask q_mask = ChangeMask::FromFull(
        sys->arena_.LeaseCopyOf(mask.delta()));
    SendDualParityLegs(op, g, home, row, std::move(mask), std::move(q_mask),
                       uid, std::move(done), std::move(fail));
  }

  /// Ships (possibly distinct) deltas to the P and Q legs of one row. The
  /// §5 commit condition spans two acks: `done` fires only after both legs
  /// resolve, and the first failure wins once both have.
  void SendDualParityLegs(uint64_t op, int g, int home, BlockNum row,
                          ChangeMask p_mask, ChangeMask q_mask, Uid uid,
                          std::function<void()> done,
                          std::function<void(Status)> fail) {
    struct LegJoin {
      int remaining = 2;
      Status first_error = Status::OK();
      std::function<void()> done;
      std::function<void(Status)> fail;
    };
    auto join = std::make_shared<LegJoin>();
    join->done = std::move(done);
    join->fail = std::move(fail);
    auto leg_done = [join]() {
      if (--join->remaining > 0) return;
      if (join->first_error.ok()) {
        join->done();
      } else if (join->fail) {
        join->fail(std::move(join->first_error));
      }
    };
    auto leg_fail = [join](Status st) {
      if (join->first_error.ok()) join->first_error = std::move(st);
      if (--join->remaining > 0) return;
      if (join->fail) join->fail(std::move(join->first_error));
    };
    SendParityLeg(op, g, home, row,
                  static_cast<int>(lay(g).ParitySite(row)),
                  std::move(p_mask), uid, leg_done, leg_fail);
    SendParityLeg(op | kQLegBit, g, home, row,
                  static_cast<int>(lay(g).QParitySite(row)),
                  std::move(q_mask), uid, leg_done, leg_fail);
  }

  void SendParityLeg(uint64_t op, int g, int home, BlockNum row, int pm,
                     ChangeMask mask, Uid uid, std::function<void()> done,
                     std::function<void(Status)> fail) {
    SiteId parity_site = grp(g)->SiteOfMember(pm);
    if (sys->Perceived(self, parity_site) == SiteState::kDown) {
      sys->stats_.Add("node.parity_dropped");
      done();
      return;
    }
    if (sys->node_config_.parity_batch.enabled) {
      // Write-combining path (DESIGN.md §10): stage the mask; same-row
      // updates XOR-merge in the coalescer and one batched frame carries
      // the lot. The op's completion still waits for the (batch) ack —
      // §5's commit condition is unchanged.
      ParityWait wait;
      wait.done = std::move(done);
      wait.fail = std::move(fail);
      wait.parity_site = parity_site;
      parity_done[op] = std::move(wait);
      parity_tries[op] = 0;
      staging[{g, parity_site}].Add(
          row, home, std::move(mask), uid,
          sys->EpochOf(grp(g)->SiteOfMember(home)), op);
      sys->stats_.Add("node.parity_staged");
      MaybeFlush(g, parity_site);
      return;
    }
    ParityWait wait;
    wait.done = std::move(done);
    wait.fail = std::move(fail);
    wait.parity_site = parity_site;
    ParityUpdate& u = wait.update;
    u.op = op;
    u.group = g;
    u.row = row;
    u.position = home;
    u.wire_bytes = mask.EncodedSize();
    u.delta = std::move(mask).TakeDelta();
    u.uid = uid;
    parity_done[op] = std::move(wait);
    parity_tries[op] = 0;
    TransmitParity(op);
  }

  void TransmitParity(uint64_t op) {
    auto it = parity_done.find(op);
    if (it == parity_done.end()) return;
    ParityUpdate& u = it->second.update;
    u.home_epoch = sys->EpochOf(grp(u.group)->SiteOfMember(u.position));
    // Re-resolve the parity's member per transmit: an expansion can move a
    // parity block between retries, and a retransmit to the old host would
    // bounce (StaleEpoch) forever. Identity under the rotated layout.
    const bool q_leg = (op & kQLegBit) != 0;
    const int pm = static_cast<int>(q_leg ? lay(u.group).QParitySite(u.row)
                                          : lay(u.group).ParitySite(u.row));
    it->second.parity_site = grp(u.group)->SiteOfMember(pm);
    Send(it->second.parity_site, MessageType::kParityUpdate, u, u.wire_bytes);
    uint64_t timer = sim()->Schedule(
        sys->node_config_.retry_timeout, [this, op]() {
          auto it = parity_done.find(op);
          if (it == parity_done.end()) return;  // acked meanwhile
          if (++parity_tries[op] > sys->node_config_.max_retries) {
            sys->stats_.Add("node.parity_gave_up");
            ParityWait wait = std::move(it->second);
            parity_done.erase(it);
            parity_tries.erase(op);
            parity_timers.erase(op);
            if (wait.fail) {
              wait.fail(Status::NetworkError("parity update unacked"));
            }
            return;
          }
          sys->stats_.Add("node.parity_retransmit");
          TransmitParity(op);
        });
    parity_timers[op] = timer;
  }

  /// Parity ops seen by this node: false = apply in flight, true =
  /// applied. The paper's UID-array check alone cannot catch a duplicate
  /// that arrives *after a newer update for the same position* replaced
  /// the array entry — re-XORing its mask would corrupt the parity block.
  /// The op-level map closes that window; the UID-array check still covers
  /// duplicates that outlive a node restart (which clears this map).
  std::map<uint64_t, bool> parity_ops;

  void OnParityUpdate(Message& msg) {
    ParityUpdate u = std::move(std::get<ParityUpdate>(msg.payload));
    const SiteId from = msg.from;
    auto seen = parity_ops.find(u.op);
    if (seen != parity_ops.end()) {
      sys->stats_.Add("node.parity_duplicate");
      // In flight: stay silent, the original's ack (or the sender's
      // retransmit) resolves it. Applied: re-ack, the first ack was lost.
      if (seen->second) Send(from, MessageType::kParityAck, ParityAck{u.op}, 0);
      return;
    }
    {
      const BlockRole role = RoleHere(u.group, u.row);
      if (role != BlockRole::kParity && role != BlockRole::kParityQ) {
        // The row's parity block moved (expansion) after the sender
        // resolved its site. Nack so the sender re-resolves and
        // retransmits to the current host.
        Send(from, MessageType::kParityNack,
             ParityNack{u.op,
                        Misroute("parity update reached a non-parity "
                                 "member")},
             0);
        sys->arena_.Return(std::move(u.delta));
        return;
      }
    }
    // Idempotence across restarts: a duplicate carries the UID we already
    // recorded in the array (paper §3.3 machinery).
    Result<BlockRecord> rec = store()->Peek(phys(u.group, u.row));
    if (rec.ok() &&
        static_cast<size_t>(u.position) < rec->uid_array.size() &&
        rec->uid_array[static_cast<size_t>(u.position)] == u.uid) {
      Send(from, MessageType::kParityAck, ParityAck{u.op}, 0);
      sys->stats_.Add("node.parity_duplicate");
      return;
    }
    if (!sys->CheckMemberEpoch(u.group, u.position, u.home_epoch).ok()) {
      // A delayed update whose delta was computed against a membership
      // view the home site has since cycled out of. The UID-array check
      // above cannot catch every such straggler (recovery may have rebuilt
      // the array without this update's UID); re-XORing its mask now would
      // corrupt the parity block. Nack so the sender stops retransmitting
      // and surfaces a retryable failure instead of timing out.
      sys->stats_.Add("node.stale_epoch_rejected");
      Send(from, MessageType::kParityNack,
           ParityNack{u.op, Status::StaleEpoch("parity epoch")}, 0);
      sys->arena_.Return(std::move(u.delta));
      return;
    }
    parity_ops[u.op] = false;
    const BlockNum paddr = phys(u.group, u.row);
    ScheduleDisk(IoClass::kWriteback, IoKind::kWrite, paddr, 1,
                 [this, u = std::move(u), from]() mutable {
      // Re-run the §3.3 idempotence check at apply time: a recovery
      // rebuild of this parity row can land inside the disk-latency
      // window (disk failure at this site wipes the row, the sweep
      // recomputes it from the members' local copies — which already
      // contain this update's delta). The receive-time check cannot see
      // that, and XORing the delta into the rebuilt sum would count it
      // twice, corrupting the parity while its UID array stays
      // plausible.
      Result<BlockRecord> cur = store()->Peek(phys(u.group, u.row));
      if (cur.ok() &&
          static_cast<size_t>(u.position) < cur->uid_array.size() &&
          cur->uid_array[static_cast<size_t>(u.position)] == u.uid) {
        sys->stats_.Add("node.parity_apply_superseded");
        sys->arena_.Return(std::move(u.delta));
        parity_ops[u.op] = true;
        Send(from, MessageType::kParityAck, ParityAck{u.op}, 0);
        return;
      }
      // ApplyMask XORs the delta straight into the parity buffer; the
      // delta block is spent afterwards, so its buffer goes back to the
      // arena. The wire carries the raw data delta for both parity roles;
      // a Q site folds in its Reed-Solomon coefficient here (Q' = Q ^
      // g^position * delta), so P and Q legs share one encoding.
      if (IsQParityRowHere(u.group, u.row)) {
        GfScaleInPlace(&u.delta, GfQCoeff(u.position));
      }
      ChangeMask mask = ChangeMask::FromFull(std::move(u.delta));
      Status st = store()->ApplyMask(
          phys(u.group, u.row), mask, u.uid, static_cast<size_t>(u.position),
          static_cast<size_t>(grp(u.group)->num_members()));
      CacheInvalidate(phys(u.group, u.row));
      sys->arena_.Return(std::move(mask).TakeDelta());
      if (!st.ok()) {
        sys->stats_.Add("node.parity_apply_failed");
        // Lost parity block; recovery will recompute — no ack, and the
        // op is forgotten so a retransmit can retry the apply.
        parity_ops.erase(u.op);
        return;
      }
      parity_ops[u.op] = true;
      Send(from, MessageType::kParityAck, ParityAck{u.op}, 0);
    });
  }

  void OnParityAck(const Message& msg) {
    auto ack = std::get<ParityAck>(msg.payload);
    auto it = parity_done.find(ack.op);
    if (it == parity_done.end()) return;  // duplicate ack
    auto done = std::move(it->second.done);
    parity_done.erase(it);
    parity_tries.erase(ack.op);
    auto timer = parity_timers.find(ack.op);
    if (timer != parity_timers.end()) {
      sim()->Cancel(timer->second);
      parity_timers.erase(timer);
    }
    done();
  }

  void OnParityNack(const Message& msg) {
    auto nack = std::get<ParityNack>(msg.payload);
    auto it = parity_done.find(nack.op);
    if (it == parity_done.end()) return;  // already resolved
    auto timer = parity_timers.find(nack.op);
    if (timer != parity_timers.end()) {
      sim()->Cancel(timer->second);
      parity_timers.erase(timer);
    }
    if (++parity_tries[nack.op] > sys->node_config_.max_retries) {
      ParityWait wait = std::move(it->second);
      parity_done.erase(it);
      parity_tries.erase(nack.op);
      if (wait.fail) wait.fail(nack.status);
      return;
    }
    // We are alive, so the stale stamp just means the home transitioned
    // while this update was in flight (e.g. its sweep finished and it was
    // marked up). Re-read the membership and retransmit immediately — the
    // fresh stamp makes the same delta acceptable. Only delayed copies
    // from dead incarnations, which nobody restamps, stay rejected.
    sys->stats_.Add("node.parity_nack_retry");
    TransmitParity(nack.op);
  }

  // --- batched parity pipeline (DESIGN.md §10) ----------------------------
  //
  // Sender side: SendParityUpdate stages masks into a per-parity-site
  // ParityCoalescer instead of sending them; FlushParity drains the
  // eligible entries into one ParityBatchFrame when an op-count / byte /
  // delay threshold trips. At most one in-flight update per (row,
  // position) key: entries whose key rides an unacked batch stay staged
  // (blocked) and flush when that batch resolves, so reordered frames can
  // never leave the parity UID array pointing at a stale merge.

  /// Wire cost of one batch entry's framing (row, position, epoch, UID) —
  /// cheaper than a full kWireHeader because the entries share the
  /// frame's addressing and sequencing.
  static constexpr size_t kBatchEntryHeader = 24;

  /// Staging is keyed by (group, parity site): a frame addresses one
  /// group's layout, so coalescers — and the blocked-key rule — must never
  /// mix groups even when two groups share a parity site.
  using BatchKey = std::pair<int, SiteId>;
  std::map<BatchKey, ParityCoalescer> staging;
  std::map<BatchKey, uint64_t> flush_timers;  // (group, parity site) -> timer
  uint64_t next_batch_seq = 1;
  struct InFlightBatch {
    int group = 0;
    SiteId parity_site = 0;
    std::vector<ParityCoalescer::Entry> entries;
    int tries = 0;
    uint64_t timer = 0;
  };
  std::map<uint64_t, InFlightBatch> batches;       // batch_seq -> batch
  /// Keys on the wire, per (group, parity site).
  std::map<BatchKey, std::set<ParityCoalescer::Key>> inflight_keys;

  /// Receiver side: per-sender batch sequence numbers already processed.
  /// nullopt while the apply is in flight; the recorded ack once done, so
  /// a duplicated frame replays the answer instead of re-XORing masks.
  std::map<SiteId, std::map<uint64_t, std::optional<ParityBatchAck>>>
      batch_seen;

  /// Completes one staged/batched parity waiter (ack fanout).
  void ResolveParityOp(uint64_t op, Status st) {
    parity_tries.erase(op);
    auto it = parity_done.find(op);
    if (it == parity_done.end()) return;
    ParityWait wait = std::move(it->second);
    parity_done.erase(it);
    if (st.ok()) {
      wait.done();
    } else if (wait.fail) {
      wait.fail(std::move(st));
    }
  }

  void MaybeFlush(int g, SiteId parity_site) {
    const BatchKey bk{g, parity_site};
    auto sit = staging.find(bk);
    if (sit == staging.end() || sit->second.empty()) return;
    const ParityBatchConfig& pb = sys->node_config_.parity_batch;
    if (sit->second.op_count() >= static_cast<size_t>(pb.max_ops) ||
        sit->second.staged_bytes() >= pb.max_bytes) {
      FlushParity(g, parity_site);
      return;
    }
    if (flush_timers.count(bk)) return;  // already armed
    flush_timers[bk] =
        sim()->Schedule(pb.max_delay, [this, g, parity_site]() {
          flush_timers.erase(BatchKey{g, parity_site});
          FlushParity(g, parity_site);
        });
  }

  void FlushParity(int g, SiteId parity_site) {
    const BatchKey bk{g, parity_site};
    auto tit = flush_timers.find(bk);
    if (tit != flush_timers.end()) {
      sim()->Cancel(tit->second);
      flush_timers.erase(tit);
    }
    auto sit = staging.find(bk);
    if (sit == staging.end() || sit->second.empty()) return;
    std::vector<ParityCoalescer::Entry> entries =
        sit->second.TakeEligible(inflight_keys[bk]);
    // All staged keys blocked behind in-flight batches: they flush when
    // those batches resolve (ack, nacked-entry retry, or give-up).
    if (entries.empty()) return;
    const uint64_t seq = next_batch_seq++;
    for (const ParityCoalescer::Entry& e : entries) {
      inflight_keys[bk].insert(e.key());
    }
    InFlightBatch b;
    b.group = g;
    b.parity_site = parity_site;
    b.entries = std::move(entries);
    batches.emplace(seq, std::move(b));
    sys->stats_.Add("node.batches_sent");
    TransmitBatch(seq);
  }

  void TransmitBatch(uint64_t seq) {
    auto it = batches.find(seq);
    if (it == batches.end()) return;
    InFlightBatch& b = it->second;
    ParityBatchFrame frame;
    frame.batch_seq = seq;
    frame.group = b.group;
    frame.entries.reserve(b.entries.size());
    size_t wire = 0;
    for (const ParityCoalescer::Entry& e : b.entries) {
      ParityBatchEntry w;
      w.row = e.row;
      w.position = e.position;
      // Deliberately NOT restamped per transmit: the stamp records which
      // membership view the delta was diffed under. If the home's epoch
      // has moved since (say its disk failed and recovery rebuilt the row
      // from parity), applying this delta would corrupt the rebuilt
      // parity; the receiver must see the stale stamp and refuse.
      w.home_epoch = e.home_epoch;
      w.uid = e.uid;
      w.wire_bytes = e.encoded_bytes;
      w.delta = sys->arena_.LeaseCopyOf(e.delta);
      wire += kBatchEntryHeader + e.encoded_bytes;
      frame.entries.push_back(std::move(w));
    }
    Send(b.parity_site, MessageType::kParityBatch, std::move(frame), wire);
    // The receiver's apply is charged one disk write per entry, so the ack
    // deadline must grow with the frame or large batches time out even on
    // a healthy network.
    const SimTime timeout =
        sys->node_config_.retry_timeout +
        sys->DiskModelOf(b.parity_site).write_latency *
            static_cast<SimTime>(b.entries.size());
    b.timer = sim()->Schedule(
        timeout, [this, seq]() {
          auto bit = batches.find(seq);
          if (bit == batches.end()) return;  // acked meanwhile
          if (++bit->second.tries > sys->node_config_.max_retries) {
            sys->stats_.Add("node.batch_gave_up");
            InFlightBatch dead = std::move(bit->second);
            batches.erase(bit);
            const BatchKey bk{dead.group, dead.parity_site};
            for (ParityCoalescer::Entry& e : dead.entries) {
              inflight_keys[bk].erase(e.key());
              for (uint64_t op : e.ops) {
                ResolveParityOp(
                    op, Status::NetworkError("parity batch unacked"));
              }
            }
            // The released keys may unblock staged entries.
            if (!staging[bk].empty()) {
              FlushParity(dead.group, dead.parity_site);
            }
            return;
          }
          sys->stats_.Add("node.batch_retransmit");
          TransmitBatch(seq);
        });
  }

  void OnParityBatch(Message& msg) {
    ParityBatchFrame frame =
        std::move(std::get<ParityBatchFrame>(msg.payload));
    const SiteId from = msg.from;
    auto& seen = batch_seen[from];
    auto sit = seen.find(frame.batch_seq);
    if (sit != seen.end()) {
      sys->stats_.Add("node.batch_duplicate");
      if (sit->second.has_value()) {
        // The first ack was lost: replay the recorded one verbatim.
        Send(from, MessageType::kParityBatchAck, *sit->second,
             sit->second->entry_status.size());
      }
      // else: the original is still applying; its ack resolves the sender.
      for (ParityBatchEntry& e : frame.entries) {
        sys->arena_.Return(std::move(e.delta));
      }
      return;
    }
    seen.emplace(frame.batch_seq, std::nullopt);
    ParityBatchAck ack;
    ack.batch_seq = frame.batch_seq;
    ack.entry_status.assign(frame.entries.size(), Status::OK());
    std::vector<size_t> to_apply;
    for (size_t i = 0; i < frame.entries.size(); ++i) {
      ParityBatchEntry& e = frame.entries[i];
      {
        const BlockRole role = RoleHere(frame.group, e.row);
        if (role != BlockRole::kParity && role != BlockRole::kParityQ) {
          // This row's parity moved off this member (expansion); per-entry
          // refusal, the rest of the frame still lands.
          ack.entry_status[i] =
              Misroute("batched parity entry reached a non-parity member");
          sys->arena_.Return(std::move(e.delta));
          continue;
        }
      }
      // §3.3 UID-array backstop: catches duplicates that outlive a node
      // restart (which clears the seq table) or its eviction bound.
      Result<BlockRecord> rec = store()->Peek(phys(frame.group, e.row));
      if (rec.ok() &&
          static_cast<size_t>(e.position) < rec->uid_array.size() &&
          rec->uid_array[static_cast<size_t>(e.position)] == e.uid) {
        sys->stats_.Add("node.parity_duplicate");
        sys->arena_.Return(std::move(e.delta));
        continue;  // already applied; entry status stays OK
      }
      if (!sys->CheckMemberEpoch(frame.group, e.position, e.home_epoch)
               .ok()) {
        // Same straggler hazard as the unbatched path; rejected per entry
        // so the rest of the frame still lands.
        sys->stats_.Add("node.stale_epoch_rejected");
        ack.entry_status[i] = Status::StaleEpoch("parity epoch");
        sys->arena_.Return(std::move(e.delta));
        continue;
      }
      to_apply.push_back(i);
    }
    if (to_apply.empty()) {
      FinishBatchApply(from, std::move(frame), std::move(ack), {});
      return;
    }
    // One queued disk pass, charged per applied row (group commit
    // amortizes messages, not disk writes).
    const BlockNum first_addr =
        phys(frame.group, frame.entries[to_apply.front()].row);
    const uint32_t apply_units = static_cast<uint32_t>(to_apply.size());
    ScheduleDisk(IoClass::kWriteback, IoKind::kWrite, first_addr,
                 apply_units,
                 [this, from, frame = std::move(frame),
                  ack = std::move(ack),
                  to_apply = std::move(to_apply)]() mutable {
                   FinishBatchApply(from, std::move(frame), std::move(ack),
                                    to_apply);
                 });
  }

  void FinishBatchApply(SiteId from, ParityBatchFrame frame,
                        ParityBatchAck ack,
                        const std::vector<size_t>& to_apply) {
    for (size_t i : to_apply) {
      ParityBatchEntry& e = frame.entries[i];
      {
        const BlockRole role = RoleHere(frame.group, e.row);
        if (role != BlockRole::kParity && role != BlockRole::kParityQ) {
          // The parity moved while the frame sat in the disk queue.
          ack.entry_status[i] =
              Misroute("batched parity entry reached a non-parity member");
          sys->arena_.Return(std::move(e.delta));
          continue;
        }
      }
      // Re-checked at apply time, not just at receipt: the home's epoch
      // can move while this frame sits in the disk queue, and a recovery
      // sweep may reconstruct the row from the pre-delta parity in that
      // window. Applying the delta afterwards would corrupt the rebuilt
      // state.
      Result<BlockRecord> cur = store()->Peek(phys(frame.group, e.row));
      if (cur.ok() &&
          static_cast<size_t>(e.position) < cur->uid_array.size() &&
          cur->uid_array[static_cast<size_t>(e.position)] == e.uid) {
        // A rebuild of this row landed in the disk window and gathered
        // the home's local copy, which already contains this delta —
        // XORing it again would double-count it (see OnParityUpdate).
        sys->stats_.Add("node.parity_apply_superseded");
        sys->arena_.Return(std::move(e.delta));
        continue;
      }
      if (!sys->CheckMemberEpoch(frame.group, e.position, e.home_epoch)
               .ok()) {
        sys->stats_.Add("node.stale_epoch_rejected");
        ack.entry_status[i] = Status::StaleEpoch("parity epoch");
        sys->arena_.Return(std::move(e.delta));
        continue;
      }
      // Same raw-delta convention as the unbatched path: a Q site scales
      // the (possibly coalesced) delta by its coefficient before the XOR.
      // Coalesced entries merge deltas for one (row, position) key, which
      // all share the same coefficient, so scaling after the merge equals
      // merging scaled deltas.
      if (IsQParityRowHere(frame.group, e.row)) {
        GfScaleInPlace(&e.delta, GfQCoeff(e.position));
      }
      ChangeMask mask = ChangeMask::FromFull(std::move(e.delta));
      Status st = store()->ApplyMask(
          phys(frame.group, e.row), mask, e.uid,
          static_cast<size_t>(e.position),
          static_cast<size_t>(grp(frame.group)->num_members()));
      CacheInvalidate(phys(frame.group, e.row));
      sys->arena_.Return(std::move(mask).TakeDelta());
      if (!st.ok()) {
        // Lost parity block; recovery will recompute. The per-entry error
        // lets the sender retry just this row.
        sys->stats_.Add("node.parity_apply_failed");
        ack.entry_status[i] = std::move(st);
      }
    }
    const size_t wire = ack.entry_status.size();  // one status byte each
    Send(from, MessageType::kParityBatchAck, ack, wire);
    auto& seen = batch_seen[from];
    seen[frame.batch_seq] = std::move(ack);
    // Bound the dedupe table: the sender's retry budget bounds how long a
    // recorded ack can still be asked for, and the UID-array check above
    // backstops any straggler that outlives the eviction.
    constexpr size_t kMaxRecordedAcks = 128;
    for (auto oldest = seen.begin();
         seen.size() > kMaxRecordedAcks && oldest != seen.end();) {
      if (oldest->second.has_value()) {
        oldest = seen.erase(oldest);
      } else {
        ++oldest;  // in flight: keep
      }
    }
  }

  void OnParityBatchAck(Message& msg) {
    const ParityBatchAck& ack = std::get<ParityBatchAck>(msg.payload);
    auto it = batches.find(ack.batch_seq);
    if (it == batches.end()) return;  // duplicate ack
    InFlightBatch batch = std::move(it->second);
    batches.erase(it);
    if (batch.timer != 0) sim()->Cancel(batch.timer);
    const BatchKey bk{batch.group, batch.parity_site};
    for (size_t i = 0; i < batch.entries.size(); ++i) {
      ParityCoalescer::Entry& e = batch.entries[i];
      inflight_keys[bk].erase(e.key());
      Status st = i < ack.entry_status.size() ? ack.entry_status[i]
                                              : Status::OK();
      if (st.ok()) {
        for (uint64_t op : e.ops) ResolveParityOp(op, Status::OK());
        continue;
      }
      if (st.IsStaleEpoch()) {
        // The delta was diffed under a membership view the home has since
        // left; retransmitting it can never succeed (the stamp only gets
        // staler). Fail the waiters now — the write layer re-runs the
        // whole write against current state, recomputing the delta.
        for (uint64_t op : e.ops) ResolveParityOp(op, st);
        continue;
      }
      // Per-entry refusal (lost parity block): spend one retry per
      // waiter, fail the exhausted ones, re-stage the entry for the
      // survivors.
      std::vector<uint64_t> live;
      for (uint64_t op : e.ops) {
        auto tries = parity_tries.find(op);
        if (tries == parity_tries.end()) continue;
        if (++tries->second > sys->node_config_.max_retries) {
          ResolveParityOp(op, st);
        } else {
          live.push_back(op);
        }
      }
      if (live.empty()) continue;
      sys->stats_.Add("node.batch_entry_retry");
      e.ops = std::move(live);
      staging[bk].AddEntry(std::move(e));
    }
    // The released keys may have blocked staged entries, and retried ones
    // were just re-staged; their waiters already paid a round trip, so
    // drain immediately rather than waiting out another flush delay.
    if (!staging[bk].empty()) FlushParity(batch.group, batch.parity_site);
  }

  void OnSpareReadReq(Message& msg) {
    auto req = std::get<SpareReadReq>(msg.payload);
    const SiteId from = msg.from;
    if (RoleHere(req.group, req.row) != BlockRole::kSpare) {
      SpareReadReply rep;
      rep.op = req.op;
      rep.status = Misroute("spare read reached a non-spare member");
      Send(from, MessageType::kSpareReadReply, std::move(rep), 0);
      return;
    }
    const BlockNum prow = phys(req.group, req.row);
    WithLock(req.op, prow, LockMode::kShared, [this, req, from, prow]() {
      ScheduleDisk(IoClass::kForeground, IoKind::kRead, prow, 1,
                   [this, req, from, prow]() {
        SpareReadReply rep;
        rep.op = req.op;
        Result<BlockRecord> rec = store()->Read(prow);
        if (rec.ok() && rec->uid.valid() && rec->spare_for == req.home) {
          rep.status = Status::OK();
          rep.data = std::move(rec->data);
          rep.logical_uid = rec->logical_uid;
        } else {
          rep.status = Status::NotFound("spare invalid");
        }
        Unlock(req.op, prow);
        size_t wire = rep.status.ok() ? rep.data.size() : 0;
        Send(from, MessageType::kSpareReadReply, std::move(rep), wire);
      });
    });
  }

  void OnSpareTakeReq(Message& msg) {
    auto req = std::get<SpareTakeReq>(msg.payload);
    const SiteId from = msg.from;
    if (RoleHere(req.group, req.row) != BlockRole::kSpare) {
      SpareReadReply rep;
      rep.op = req.op;
      rep.status = Misroute("spare take reached a non-spare member");
      Send(from, MessageType::kSpareTakeReply, std::move(rep), 0);
      return;
    }
    const BlockNum prow = phys(req.group, req.row);
    WithLock(req.op, prow, LockMode::kExclusive, [this, req, from, prow]() {
      ScheduleDisk(IoClass::kForeground, IoKind::kRead, prow, 1,
                   [this, req, from, prow]() {
        SpareReadReply rep;
        rep.op = req.op;
        Result<BlockRecord> rec = store()->Read(prow);
        if (rec.ok() && rec->uid.valid() && rec->spare_for == req.home) {
          rep.status = Status::OK();
          rep.data = std::move(rec->data);
          rep.logical_uid = rec->logical_uid;
        } else {
          rep.status = Status::NotFound("spare invalid");
        }
        Unlock(req.op, prow);
        size_t wire = rep.status.ok() ? rep.data.size() : 0;
        Send(from, MessageType::kSpareTakeReply, std::move(rep), wire);
      });
    });
  }

  void OnSpareWriteReq(Message& msg) {
    SpareWriteReq req = std::move(std::get<SpareWriteReq>(msg.payload));
    const SiteId from = msg.from;
    if (DedupeWrite(req.op, from, MessageType::kSpareWriteReply)) return;
    if (req.deadline != 0 && sim()->Now() > req.deadline) {
      sys->stats_.Add("node.write_expired");
      sys->arena_.Return(std::move(req.data));
      return;
    }
    if (!sys->CheckMemberEpoch(req.group, req.home, req.home_epoch).ok()) {
      // The writer's view of the home site is stale (it transitioned since
      // the request was stamped) — absorbing the write into the spare now
      // could shadow a home that is no longer down. Retryable: the client
      // restamps and re-evaluates the routing.
      sys->stats_.Add("node.stale_epoch_rejected");
      write_flows.erase(req.op);
      Send(from, MessageType::kSpareWriteReply,
           WriteReply{req.op, Status::StaleEpoch("spare write epoch")}, 0);
      sys->arena_.Return(std::move(req.data));
      return;
    }
    if (RoleHere(req.group, req.row) != BlockRole::kSpare) {
      write_flows.erase(req.op);
      Send(from, MessageType::kSpareWriteReply,
           WriteReply{req.op,
                      Misroute("spare write reached a non-spare member")},
           0);
      sys->arena_.Return(std::move(req.data));
      return;
    }
    const uint64_t op = req.op;
    const BlockNum prow = phys(req.group, req.row);
    WithLock(op, prow, LockMode::kExclusive,
             [this, req = std::move(req), from]() mutable {
      if (lay(req.group).dual_parity()) {
        // P+Q: the old value must be fetched per leg — a torn pair (one
        // leg applied an update the other missed around the home's crash)
        // cannot be repaired by one shared delta. Even an already-applied
        // logical UID is re-driven for the same reason: the previous flow
        // may have converged one leg and not the other, and the reissue's
        // per-leg deltas are zero wherever a leg is already current.
        StartDualSpareWrite(std::move(req), from);
        return;
      }
      Result<BlockRecord> old = store()->Peek(phys(req.group, req.row));
      bool have_old =
          old.ok() && old->uid.valid() && old->spare_for == req.home;
      if (have_old && old->logical_uid == req.uid) {
        // Duplicate of a spare write we already performed (lost reply).
        Unlock(req.op, phys(req.group, req.row));
        CompleteWrite(req.op, from, MessageType::kSpareWriteReply,
                      WriteReply{req.op, Status::OK()});
        return;
      }
      if (have_old) {
        CommitSpareWrite(std::move(req), from, std::move(old->data));
        return;
      }
      // Spare invalid: reconstruct the old value first so the parity
      // delta is correct (first-degraded-write penalty).
      const uint64_t op = req.op;
      const int g = req.group;
      const int home = req.home;
      const BlockNum row = req.row;
      StartReconstruction(
          op, g, home, row,
          [this, req = std::move(req), from](Status st, Block data,
                                             Uid) mutable {
            if (!st.ok()) {
              Unlock(req.op, phys(req.group, req.row));
              CompleteWrite(req.op, from, MessageType::kSpareWriteReply,
                            WriteReply{req.op, st});
              return;
            }
            CommitSpareWrite(std::move(req), from, std::move(data));
          });
    });
  }

  void CommitSpareWrite(SpareWriteReq req, SiteId reply_to,
                        Block old_value) {
    const BlockNum addr = phys(req.group, req.row);
    ScheduleDisk(IoClass::kForeground, IoKind::kWrite, addr, 1,
                 [this, req = std::move(req), reply_to,
                  old_value = std::move(old_value)]() mutable {
      if (sys->Perceived(self, grp(req.group)->SiteOfMember(req.home)) ==
          SiteState::kUp) {
        // The home recovered while this flow was queued (slow disk, long
        // reconstruction): committing now would shadow an up member. Stay
        // silent — the client's retry re-evaluates and targets the home.
        sys->stats_.Add("node.spare_write_stale");
        Unlock(req.op, phys(req.group, req.row));
        write_flows.erase(req.op);
        sys->arena_.Return(std::move(req.data));
        sys->arena_.Return(std::move(old_value));
        return;
      }
      BlockRecord rec(0);
      rec.data = std::move(req.data);
      rec.uid = req.uid;
      rec.logical_uid = req.uid;
      rec.spare_for = req.home;
      Status st = store()->WriteRecord(phys(req.group, req.row), rec);
      CacheInvalidate(phys(req.group, req.row));
      if (!st.ok()) {
        Unlock(req.op, phys(req.group, req.row));
        CompleteWrite(req.op, reply_to, MessageType::kSpareWriteReply,
                      WriteReply{req.op, st});
        return;
      }
      Result<ChangeMask> mask = ChangeMask::Diff(old_value, rec.data);
      sys->arena_.Return(std::move(old_value));
      sys->arena_.Return(std::move(rec.data));
      const uint64_t op = req.op;
      const BlockNum prow = phys(req.group, req.row);
      SendParityUpdate(op, req.group, req.home, req.row, std::move(*mask),
                       req.uid,
                       [this, op, prow, reply_to]() {
                         Unlock(op, prow);
                         CompleteWrite(op, reply_to, MessageType::kSpareWriteReply,
                                       WriteReply{op, Status::OK()});
                       },
                       [this, op, prow, reply_to](Status st) {
                         Unlock(op, prow);
                         if (st.IsStaleEpoch()) {
                           write_flows.erase(op);
                           Send(reply_to, MessageType::kSpareWriteReply,
                                WriteReply{op, std::move(st)}, 0);
                           return;
                         }
                         CompleteWrite(op, reply_to, MessageType::kSpareWriteReply,
                                       WriteReply{op, std::move(st)});
                       });
    });
  }

  /// In-flight state of a dual-parity spare write: the home's old value
  /// as encoded by each parity leg, gathered before the commit.
  struct SpareReissue {
    SpareWriteReq req;
    SiteId reply_to = 0;
    bool p_up = false;
    bool q_up = false;
    Block old_p{0};
    Block old_q{0};
  };

  void StartDualSpareWrite(SpareWriteReq req, SiteId from) {
    auto st = std::make_shared<SpareReissue>();
    st->req = std::move(req);
    st->reply_to = from;
    const int g = st->req.group;
    const BlockNum row = st->req.row;
    st->p_up =
        sys->Perceived(self, grp(g)->SiteOfMember(static_cast<int>(
                                 lay(g).ParitySite(row)))) == SiteState::kUp;
    st->q_up =
        sys->Perceived(self, grp(g)->SiteOfMember(static_cast<int>(
                                 lay(g).QParitySite(row)))) == SiteState::kUp;
    DualSpareOld(std::move(st), /*leg=*/1);
  }

  /// Fetches the old value for `leg` (1 = P, 2 = Q), then advances:
  /// P → Q → commit. A leg whose parity site is not up gets a zero delta
  /// (the send drops it anyway, and that parity is rebuilt wholesale by
  /// its own recovery before it regains decode authority).
  void DualSpareOld(std::shared_ptr<SpareReissue> st, int leg) {
    auto next = [this](std::shared_ptr<SpareReissue> s, int done_leg) {
      if (done_leg == 1) {
        DualSpareOld(std::move(s), 2);
      } else {
        CommitDualSpareWrite(std::move(s));
      }
    };
    if (!(leg == 1 ? st->p_up : st->q_up)) {
      (leg == 1 ? st->old_p : st->old_q) =
          sys->arena_.LeaseCopyOf(st->req.data);
      next(std::move(st), leg);
      return;
    }
    const uint64_t key =
        st->req.op | kReissueBit | (leg == 2 ? kQLegBit : 0);
    StartReconstruction(
        key, st->req.group, st->req.home, st->req.row,
        [this, st, leg, next](Status rst, Block data, Uid) mutable {
          if (rst.ok()) {
            (leg == 1 ? st->old_p : st->old_q) = std::move(data);
            next(std::move(st), leg);
            return;
          }
          // Per-leg decode impossible (a second member is down, or the
          // leg flapped mid-flow): fall back to one shared two-erasure
          // decode. Its §3.3 cross-validation only passes when both legs'
          // UID arrays agree, so a shared old value is sound there.
          StartReconstruction(
              st->req.op | kReissueBit, st->req.group, st->req.home,
              st->req.row,
              [this, st](Status sst, Block data, Uid) mutable {
                if (!sst.ok()) {
                  const uint64_t op = st->req.op;
                  if (st->old_p.size() > 0) {
                    sys->arena_.Return(std::move(st->old_p));
                  }
                  Unlock(op, phys(st->req.group, st->req.row));
                  CompleteWrite(op, st->reply_to,
                                MessageType::kSpareWriteReply,
                                WriteReply{op, sst});
                  return;
                }
                if (st->old_p.size() > 0) {
                  sys->arena_.Return(std::move(st->old_p));
                }
                st->old_q = sys->arena_.LeaseCopyOf(data);
                st->old_p = std::move(data);
                CommitDualSpareWrite(std::move(st));
              });
        },
        /*for_read=*/false, /*force_leg=*/leg);
  }

  /// Dual-parity tail of the spare write: persist the record, then ship
  /// each leg its own delta under the reissue op id (see kReissueBit).
  void CommitDualSpareWrite(std::shared_ptr<SpareReissue> st) {
    const BlockNum addr = phys(st->req.group, st->req.row);
    ScheduleDisk(IoClass::kForeground, IoKind::kWrite, addr, 1,
                 [this, st]() mutable {
      SpareWriteReq& req = st->req;
      const uint64_t op = req.op;
      const BlockNum prow = phys(req.group, req.row);
      if (sys->Perceived(self, grp(req.group)->SiteOfMember(req.home)) ==
          SiteState::kUp) {
        // The home recovered while this flow was queued — committing now
        // would shadow an up member (see CommitSpareWrite).
        sys->stats_.Add("node.spare_write_stale");
        Unlock(op, prow);
        write_flows.erase(op);
        sys->arena_.Return(std::move(req.data));
        sys->arena_.Return(std::move(st->old_p));
        sys->arena_.Return(std::move(st->old_q));
        return;
      }
      BlockRecord rec(0);
      rec.data = std::move(req.data);
      rec.uid = req.uid;
      rec.logical_uid = req.uid;
      rec.spare_for = req.home;
      Status wst = store()->WriteRecord(prow, rec);
      CacheInvalidate(prow);
      if (!wst.ok()) {
        Unlock(op, prow);
        CompleteWrite(op, st->reply_to, MessageType::kSpareWriteReply,
                      WriteReply{op, wst});
        return;
      }
      Result<ChangeMask> mask_p = ChangeMask::Diff(st->old_p, rec.data);
      Result<ChangeMask> mask_q = ChangeMask::Diff(st->old_q, rec.data);
      sys->arena_.Return(std::move(st->old_p));
      sys->arena_.Return(std::move(st->old_q));
      sys->arena_.Return(std::move(rec.data));
      const SiteId reply_to = st->reply_to;
      SendDualParityLegs(
          op | kReissueBit, req.group, req.home, req.row,
          std::move(*mask_p), std::move(*mask_q), req.uid,
          [this, op, prow, reply_to]() {
            Unlock(op, prow);
            CompleteWrite(op, reply_to, MessageType::kSpareWriteReply,
                          WriteReply{op, Status::OK()});
          },
          [this, op, prow, reply_to](Status lst) {
            Unlock(op, prow);
            if (lst.IsStaleEpoch()) {
              write_flows.erase(op);
              Send(reply_to, MessageType::kSpareWriteReply,
                   WriteReply{op, std::move(lst)}, 0);
              return;
            }
            CompleteWrite(op, reply_to, MessageType::kSpareWriteReply,
                          WriteReply{op, std::move(lst)});
          });
    });
  }

  void OnSpareWriteBack(Message& msg) {
    SpareWriteBack wb = std::move(std::get<SpareWriteBack>(msg.payload));
    if (!sys->CheckMemberEpoch(wb.group, wb.home, wb.home_epoch).ok()) {
      // Fire-and-forget materialization from a reader whose view of the
      // home has since cycled; dropping it is always safe.
      sys->stats_.Add("node.writeback_stale_epoch");
      sys->arena_.Return(std::move(wb.data));
      return;
    }
    if (RoleHere(wb.group, wb.row) != BlockRole::kSpare) {
      (void)Misroute("spare writeback reached a non-spare member");
      sys->arena_.Return(std::move(wb.data));
      return;
    }
    const BlockNum wb_addr = phys(wb.group, wb.row);
    ScheduleDisk(IoClass::kRecovery, IoKind::kWrite, wb_addr, 1,
                 [this, wb = std::move(wb)]() mutable {
      // Materialization is only valid while the home is down. This message
      // is fire-and-forget, so a delayed copy can arrive after the home
      // restarted and recovery drained the spares; writing it now would
      // leave a valid spare shadowing an up member.
      if (sys->Perceived(self, grp(wb.group)->SiteOfMember(wb.home)) !=
          SiteState::kDown) {
        sys->stats_.Add("node.writeback_stale");
        sys->arena_.Return(std::move(wb.data));
        return;
      }
      Result<BlockRecord> cur = store()->Peek(phys(wb.group, wb.row));
      if (cur.ok() && cur->uid.valid()) return;  // raced with a write
      BlockRecord rec(0);
      rec.data = std::move(wb.data);
      rec.uid = site()->uids()->Next();
      rec.logical_uid = wb.logical_uid;
      rec.spare_for = wb.home;
      if (store()->WriteRecord(phys(wb.group, wb.row), rec).ok()) {
        CacheInvalidate(phys(wb.group, wb.row));
        sys->stats_.Add("node.materialized");
      }
      sys->arena_.Return(std::move(rec.data));
    });
  }

  void OnReconReq(Message& msg) {
    auto req = std::get<ReconReq>(msg.payload);
    const SiteId from = msg.from;
    if (RoleHere(req.group, req.row) == BlockRole::kNone) {
      // The requester planned its sources under tables an expansion has
      // since flipped; StaleEpoch makes it re-plan from the current map.
      ReconReply rep;
      rep.op = req.op;
      rep.row = req.row;
      rep.attempt = req.attempt;
      rep.status = Misroute("recon source no longer in the row");
      Send(from, MessageType::kReconReply, std::move(rep), 0);
      return;
    }
    // §3.3: reconstruction reads take no locks; they return UIDs instead.
    // Foreground class: recon rounds serve degraded client reads (the
    // background sweep repairs through the synchronous model instead).
    ScheduleDisk(IoClass::kForeground, IoKind::kRead,
                 phys(req.group, req.row), 1, [this, req, from]() {
      ReconReply rep;
      rep.op = req.op;
      rep.row = req.row;
      rep.attempt = req.attempt;
      Result<BlockRecord> rec = store()->Read(phys(req.group, req.row));
      if (!rec.ok()) {
        rep.status = rec.status();
      } else {
        rep.status = Status::OK();
        rep.data = std::move(rec->data);
        rep.uid = rec->uid;
        rep.uid_array = std::move(rec->uid_array);
      }
      size_t wire = rep.status.ok() ? rep.data.size() : 0;
      Send(from, MessageType::kReconReply, std::move(rep), wire);
    });
  }

  // --- client-side reconstruction state machine -----------------------------

  struct Recon {
    int group = 0;
    int home;
    BlockNum row;
    std::function<void(Status, Block, Uid)> done;
    std::vector<SiteId> sources;  // member ids
    std::map<int, ReconReply> replies;
    int attempt = 0;      // round tag; stale-round replies are discarded
    int uid_retries = 0;  // §3.3 UID-mismatch retries (capped separately)
    int rounds = 0;       // timeout-driven reissues
    uint64_t timer = 0;   // pending round-timeout event
    // Dual-parity plan (PlanRecon). Up to two erasures are decodable:
    // the home plus at most one other data member (`lost_dm`), using
    // whichever parity legs are reachable.
    bool dual = false;
    bool use_p = false;
    bool use_q = false;
    int lost_dm = -1;
    /// Members that answered with an unreadable block this flow; treated
    /// as erased in later plans even while their site looks up.
    std::set<int> dead_sources;
    /// Set for read-serving reconstructions so the decode can account
    /// degraded reads per parity role.
    bool for_read = false;
    /// Forces a single-leg decode plan: 1 = via P only, 2 = via Q only.
    /// Used by the dual spare-write path, which needs the home's value as
    /// encoded by one specific leg; widening to a two-erasure plan would
    /// defeat that, so such plans report Blocked instead.
    int force_leg = 0;
  };
  std::map<uint64_t, Recon> recons;

  /// Picks the two-erasure decode plan for a dual-parity reconstruction
  /// from the current membership view: every data member except the home
  /// (at most one of which may be unavailable) plus the reachable parity
  /// legs. A parity leg participates only while its site is fully up —
  /// a recovering parity may still hold pre-crash (stale) sums, and
  /// unlike data replies there is no UID array to arbitrate a parity
  /// block's own staleness (§3.3 covers data, not the sums).
  Status PlanRecon(Recon& rc) {
    RaddGroup* g = grp(rc.group);
    const PlacementMap& l = lay(rc.group);
    rc.sources.clear();
    rc.lost_dm = -1;
    rc.use_p = false;
    rc.use_q = false;
    for (SiteId dm : l.DataSites(rc.row)) {
      int m = static_cast<int>(dm);
      if (m == rc.home) continue;
      bool lost =
          rc.dead_sources.count(m) != 0 ||
          sys->Perceived(self, g->SiteOfMember(m)) == SiteState::kDown;
      if (!lost) {
        rc.sources.push_back(dm);
        continue;
      }
      if (rc.lost_dm >= 0) {
        return Status::Blocked("two data members unavailable");
      }
      rc.lost_dm = m;
    }
    const int pm = static_cast<int>(l.ParitySite(rc.row));
    const int qm = static_cast<int>(l.QParitySite(rc.row));
    const bool p_ok =
        rc.dead_sources.count(pm) == 0 &&
        sys->Perceived(self, g->SiteOfMember(pm)) == SiteState::kUp;
    const bool q_ok =
        rc.dead_sources.count(qm) == 0 &&
        sys->Perceived(self, g->SiteOfMember(qm)) == SiteState::kUp;
    if (rc.force_leg != 0) {
      // Per-leg old-value decode (spare reissue): the caller falls back to
      // a shared two-erasure decode when a specific leg cannot serve.
      if (rc.lost_dm >= 0) {
        return Status::Blocked("forced-leg decode with a second erasure");
      }
      if (rc.force_leg == 1) {
        if (!p_ok) return Status::Blocked("P parity unreachable");
        rc.use_p = true;
      } else {
        if (!q_ok) return Status::Blocked("Q parity unreachable");
        rc.use_q = true;
      }
    } else if (rc.lost_dm < 0) {
      // One erasure (the home): either parity alone suffices; prefer P
      // (no GF scaling on the decode path).
      if (p_ok) {
        rc.use_p = true;
      } else if (q_ok) {
        rc.use_q = true;
      } else {
        return Status::Blocked("no parity reachable");
      }
    } else {
      // Two erasures: solving for two unknowns needs both sums.
      if (!p_ok || !q_ok) {
        return Status::Blocked("member and parity unavailable");
      }
      rc.use_p = true;
      rc.use_q = true;
    }
    if (rc.use_p) rc.sources.push_back(static_cast<SiteId>(pm));
    if (rc.use_q) rc.sources.push_back(static_cast<SiteId>(qm));
    return Status::OK();
  }

  void FinishRecon(std::map<uint64_t, Recon>::iterator it, Status st,
                   Block block, Uid uid) {
    if (it->second.timer != 0) sim()->Cancel(it->second.timer);
    auto done = std::move(it->second.done);
    recons.erase(it);
    done(std::move(st), std::move(block), uid);
  }

  void StartReconstruction(uint64_t op, int g, int home, BlockNum row,
                           std::function<void(Status, Block, Uid)> done,
                           bool for_read = false, int force_leg = 0) {
    // Callers pass the row's logical owner; resolve to the member that
    // hosts its block under the current tables (identity except for rows
    // relocated by an expansion; idempotent, so already-resolved callers
    // are fine).
    home = static_cast<int>(lay(g).HostOfData(static_cast<SiteId>(home), row));
    Recon rc;
    rc.group = g;
    rc.home = home;
    rc.row = row;
    rc.done = std::move(done);
    rc.for_read = for_read;
    rc.force_leg = force_leg;
    rc.dual = lay(g).dual_parity();
    if (rc.dual) {
      Status st = PlanRecon(rc);
      if (!st.ok()) {
        rc.done(std::move(st), Block(0), Uid());
        return;
      }
    } else {
      rc.sources =
          lay(g).ReconstructionSources(static_cast<SiteId>(home), row);
      for (SiteId src : rc.sources) {
        SiteId site_id = grp(g)->SiteOfMember(static_cast<int>(src));
        if (sys->Perceived(self, site_id) == SiteState::kDown) {
          rc.done(Status::Blocked("reconstruction source down"), Block(0),
                  Uid());
          return;
        }
      }
    }
    recons[op] = std::move(rc);
    IssueReconRound(op);
  }

  void IssueReconRound(uint64_t op) {
    auto it = recons.find(op);
    if (it == recons.end()) return;
    Recon& rc = it->second;
    rc.replies.clear();
    for (SiteId src : rc.sources) {
      SiteId site_id = grp(rc.group)->SiteOfMember(static_cast<int>(src));
      Send(site_id, MessageType::kReconReq,
           ReconReq{op, rc.group, rc.row, rc.attempt}, 0);
    }
    // A source can die (or its reply be lost) mid-round, which would leave
    // this flow waiting forever. Bound each round and re-issue against the
    // current membership view, giving up once a source is known-down or
    // the retry budget is spent.
    if (rc.timer != 0) sim()->Cancel(rc.timer);
    rc.timer = sim()->Schedule(
        4 * sys->node_config_.retry_timeout, [this, op]() {
          auto rit = recons.find(op);
          if (rit == recons.end()) return;
          Recon& r = rit->second;
          r.timer = 0;
          if (r.dual) {
            // A source dying mid-round is survivable while a decodable
            // plan remains: re-plan against the current view (PlanRecon
            // re-reads every source's perceived state) and fail only when
            // the erasure budget is truly spent.
            Status st = PlanRecon(r);
            if (!st.ok()) {
              FinishRecon(rit, std::move(st), Block(0), Uid());
              return;
            }
          } else {
            for (SiteId src : r.sources) {
              SiteId site_id =
                  grp(r.group)->SiteOfMember(static_cast<int>(src));
              if (sys->Perceived(self, site_id) == SiteState::kDown) {
                FinishRecon(rit,
                            Status::Blocked("reconstruction source down"),
                            Block(0), Uid());
                return;
              }
            }
          }
          if (++r.rounds > sys->node_config_.max_retries) {
            FinishRecon(rit, Status::Blocked("reconstruction timed out"),
                        Block(0), Uid());
            return;
          }
          ++r.attempt;  // invalidate straggler replies from the lost round
          sys->stats_.Add("node.recon_round_retry");
          IssueReconRound(op);
        });
  }

  void OnReconReply(Message& msg) {
    ReconReply rep = std::move(std::get<ReconReply>(msg.payload));
    auto it = recons.find(rep.op);
    if (it == recons.end()) return;
    Recon& rc = it->second;
    if (rep.attempt != rc.attempt) {
      // A jitter-delayed reply from an earlier round; mixing it into the
      // current round could assemble a torn reconstruction.
      sys->stats_.Add("node.recon_stale_reply");
      return;
    }
    int member = grp(rc.group)->MemberAtSite(msg.from);
    if (!rep.status.ok()) {
      if (rc.dual && member >= 0) {
        // An unreadable block at a source is one more erasure, not a dead
        // end: charge it against the two-erasure budget and re-plan. The
        // member stays excluded for the rest of this flow even though its
        // site looks up.
        rc.dead_sources.insert(member);
        Status st = PlanRecon(rc);
        if (!st.ok()) {
          FinishRecon(it, std::move(st), Block(0), Uid());
          return;
        }
        ++rc.attempt;
        sys->stats_.Add("node.recon_replan");
        IssueReconRound(rep.op);
        return;
      }
      if (!rc.dual && rep.status.IsStaleEpoch()) {
        // An expansion moved this source out of the row between planning
        // and the read. Re-derive the source set from the current tables
        // and retry, bounded by the round budget.
        rc.sources = lay(rc.group).ReconstructionSources(
            static_cast<SiteId>(rc.home), rc.row);
        ++rc.attempt;
        if (++rc.rounds > sys->node_config_.max_retries) {
          FinishRecon(it, Status::Blocked("reconstruction timed out"),
                      Block(0), Uid());
          return;
        }
        sys->stats_.Add("node.recon_replan");
        IssueReconRound(rep.op);
        return;
      }
      FinishRecon(it,
                  Status::Blocked("source failed: " + rep.status.ToString()),
                  Block(0), Uid());
      return;
    }
    rc.replies[member] = std::move(rep);
    if (rc.replies.size() < rc.sources.size()) return;
    if (rc.dual) {
      FinishDualDecode(it);
      return;
    }

    // All replies in: validate UIDs against the parity array (§3.3).
    int pm = static_cast<int>(lay(rc.group).ParitySite(rc.row));
    const std::vector<Uid>* array = nullptr;
    auto pit = rc.replies.find(pm);
    if (pit != rc.replies.end()) array = &pit->second.uid_array;
    auto entry = [&](int m) {
      return array != nullptr && static_cast<size_t>(m) < array->size()
                 ? (*array)[static_cast<size_t>(m)]
                 : Uid();
    };
    bool consistent = true;
    for (const auto& [m, r] : rc.replies) {
      if (m == pm) continue;
      if (r.uid != entry(m)) {
        consistent = false;
        break;
      }
    }
    if (!consistent) {
      sys->stats_.Add("node.uid_retry");
      if (++rc.uid_retries >= sys->node_config_.max_reconstruct_attempts) {
        FinishRecon(it, Status::Inconsistent("UID validation failed"),
                    Block(0), Uid());
        return;
      }
      ++rc.attempt;
      IssueReconRound(rep.op);
      return;
    }
    // XOR-accumulate into an arena buffer; the block travels by move from
    // here to the final consumer, which returns it.
    Block out = sys->arena_.Lease();
    for (const auto& [m, r] : rc.replies) {
      if (r.data.size() == out.size()) {
        internal::XorBytes(out.data(), r.data.data(), out.size());
      }
    }
    Uid logical = entry(rc.home);
    sys->stats_.Add("node.reconstructions");
    if (rc.for_read) {
      sys->stats_.Add("node.degraded_reads");
      sys->stats_.Add("node.degraded_reads.p");
    }
    FinishRecon(it, Status::OK(), std::move(out), logical);
  }

  /// Decodes a completed dual-parity reconstruction round per the plan
  /// PlanRecon chose: P-only (plain XOR), Q-only (scaled sum), or the full
  /// two-erasure solve when a second data member is gone.
  void FinishDualDecode(std::map<uint64_t, Recon>::iterator it) {
    Recon& rc = it->second;
    const uint64_t op = it->first;
    const PlacementMap& l = lay(rc.group);
    const int pm = static_cast<int>(l.ParitySite(rc.row));
    const int qm = static_cast<int>(l.QParitySite(rc.row));
    const ReconReply* prep = rc.use_p ? &rc.replies.at(pm) : nullptr;
    const ReconReply* qrep = rc.use_q ? &rc.replies.at(qm) : nullptr;
    auto entry = [](const ReconReply* r, int m) {
      return r != nullptr && static_cast<size_t>(m) < r->uid_array.size()
                 ? r->uid_array[static_cast<size_t>(m)]
                 : Uid();
    };
    // §3.3 on both parities: every data reply must match each
    // participating parity's array entry, and when both parities take
    // part their arrays must agree on every data member — including the
    // erased ones nobody read — so a torn dual update (one leg applied,
    // the other still in flight) can never assemble a wrong block.
    bool consistent = true;
    for (const auto& [m, r] : rc.replies) {
      if (m == pm || m == qm) continue;
      if (rc.use_p && r.uid != entry(prep, m)) consistent = false;
      if (rc.use_q && r.uid != entry(qrep, m)) consistent = false;
    }
    if (consistent && rc.use_p && rc.use_q) {
      for (SiteId dm : l.DataSites(rc.row)) {
        if (entry(prep, static_cast<int>(dm)) !=
            entry(qrep, static_cast<int>(dm))) {
          consistent = false;
          break;
        }
      }
    }
    if (!consistent) {
      sys->stats_.Add("node.uid_retry");
      if (++rc.uid_retries >= sys->node_config_.max_reconstruct_attempts) {
        FinishRecon(it, Status::Inconsistent("UID validation failed"),
                    Block(0), Uid());
        return;
      }
      ++rc.attempt;
      IssueReconRound(op);
      return;
    }
    Block out = sys->arena_.Lease();
    Status st = Status::OK();
    if (rc.use_p && !rc.use_q) {
      // Single erasure via P: identical math to the single-parity path.
      for (const auto& [m, r] : rc.replies) {
        if (r.data.size() == out.size()) {
          internal::XorBytes(out.data(), r.data.data(), out.size());
        }
      }
    } else if (rc.use_q && !rc.use_p) {
      // Single erasure via Q: D_home = inv(g^home) * (Q ^ sum g^m D_m).
      for (const auto& [m, r] : rc.replies) {
        if (r.data.size() != out.size()) continue;
        if (m == qm) {
          internal::XorBytes(out.data(), r.data.data(), out.size());
        } else {
          st = GfMulAddInto(&out, r.data, GfQCoeff(m));
          if (!st.ok()) break;
        }
      }
      if (st.ok()) GfScaleInPlace(&out, GfInv(GfQCoeff(rc.home)));
    } else {
      // Two erasures (home plus lost_dm). With the survivors folded in,
      // Sp = D_home ^ D_b and Sq = g^home*D_home ^ g^b*D_b, so
      // D_home = inv(g^home ^ g^b) * (g^b*Sp ^ Sq).
      Block sp = sys->arena_.Lease();
      for (const auto& [m, r] : rc.replies) {
        if (r.data.size() != out.size()) continue;
        if (m == pm) {
          internal::XorBytes(sp.data(), r.data.data(), sp.size());
        } else if (m == qm) {
          internal::XorBytes(out.data(), r.data.data(), out.size());
        } else {
          internal::XorBytes(sp.data(), r.data.data(), sp.size());
          st = GfMulAddInto(&out, r.data, GfQCoeff(m));
          if (!st.ok()) break;
        }
      }
      if (st.ok()) st = GfMulAddInto(&out, sp, GfQCoeff(rc.lost_dm));
      if (st.ok()) {
        GfScaleInPlace(&out,
                       GfInv(static_cast<uint8_t>(GfQCoeff(rc.home) ^
                                                  GfQCoeff(rc.lost_dm))));
        sys->stats_.Add("node.recon_two_erasure");
      }
      sys->arena_.Return(std::move(sp));
    }
    if (!st.ok()) {
      sys->arena_.Return(std::move(out));
      FinishRecon(it, std::move(st), Block(0), Uid());
      return;
    }
    Uid logical = entry(rc.use_p ? prep : qrep, rc.home);
    sys->stats_.Add("node.reconstructions");
    if (rc.for_read) {
      sys->stats_.Add("node.degraded_reads");
      if (rc.use_p && rc.use_q) {
        sys->stats_.Add("node.degraded_reads.pq");
      } else if (rc.use_p) {
        sys->stats_.Add("node.degraded_reads.p");
      } else {
        sys->stats_.Add("node.degraded_reads.q");
      }
    }
    FinishRecon(it, Status::OK(), std::move(out), logical);
  }
};

// ===========================================================================
// RaddNodeSystem
// ===========================================================================

RaddNodeSystem::RaddNodeSystem(Simulator* sim, Network* net,
                               Cluster* cluster,
                               const RaddConfig& radd_config,
                               const NodeConfig& node_config)
    : RaddNodeSystem(sim, net, cluster,
                     std::vector<GroupSpec>{GroupSpec{radd_config, {}}},
                     node_config) {}

RaddNodeSystem::RaddNodeSystem(Simulator* sim, Network* net,
                               Cluster* cluster,
                               std::vector<GroupSpec> specs,
                               const NodeConfig& node_config)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      node_config_(node_config),
      arena_(specs.front().config.block_size) {
  for (GroupSpec& spec : specs) {
    // The arena recycles one buffer size across all groups; a volume with
    // mixed block sizes would hand wrong-sized leases to the smaller ones.
    if (spec.config.block_size != specs.front().config.block_size) {
      std::fprintf(stderr,
                   "RaddNodeSystem: all groups must share one block size\n");
      std::abort();
    }
    groups_.push_back(
        spec.members.empty()
            ? std::make_unique<RaddGroup>(cluster, spec.config)
            : std::make_unique<RaddGroup>(cluster, spec.config,
                                          std::move(spec.members)));
  }
  // One Node per distinct site across all groups, registered in first-seen
  // order (group-major, member order within a group) so the single-group
  // case registers handlers exactly as before.
  for (const auto& group : groups_) {
    for (int m = 0; m < group->num_members(); ++m) {
      SiteId site = group->SiteOfMember(m);
      if (nodes_.count(site)) continue;
      nodes_[site] = std::make_unique<Node>(this, site);
      net_->RegisterHandler(
          site, [this, site](Message& msg) { Dispatch(site, msg); });
    }
  }
  for (auto& [site, n] : nodes_) {
    n->locals.resize(groups_.size());
    for (size_t g = 0; g < groups_.size(); ++g) {
      int m = groups_[g]->MemberAtSite(site);
      n->locals[g].member = m;
      n->locals[g].first_block =
          m >= 0 ? groups_[g]->FirstBlockOfMember(m) : 0;
    }
    n->model = DiskModelOf(site);
    const DiskSchedConfig& sched = DiskSchedOf(site);
    // Modeled storage only when a modeled feature is on: the null case
    // takes the legacy closed-form clock path verbatim, keeping the
    // default event sequence bit-identical to the pre-scheduler protocol.
    if (sched.modeled()) {
      n->storage = std::make_unique<SiteStorage>(sim_, n->model, sched);
    }
  }
}

int RaddNodeSystem::HostMember(int grp, int home, BlockNum index) const {
  return static_cast<int>(
      groups_[static_cast<size_t>(grp)]->layout().HostOfDataIndex(
          static_cast<SiteId>(home), index));
}

Status RaddNodeSystem::AddGroupMember(int grp, const LogicalDrive& drive) {
  if (grp < 0 || static_cast<size_t>(grp) >= groups_.size()) {
    return Status::InvalidArgument("AddGroupMember: no such group");
  }
  RaddGroup* g = groups_[static_cast<size_t>(grp)].get();
  Status st = g->BeginExpansion(drive);
  if (!st.ok()) return st;
  const SiteId site = drive.site;
  auto nit = nodes_.find(site);
  if (nit == nodes_.end()) {
    // Wire a protocol Node for the new site exactly as the constructor
    // does for founding members.
    nodes_[site] = std::make_unique<Node>(this, site);
    Node* n = nodes_[site].get();
    Network::Handler prev = net_->GetHandler(site);
    if (prev) {
      // An interceptor (the heartbeat detector chains in front of the
      // protocol handlers at setup) already owns this site's slot; leave
      // it first in line for its own traffic and take the rest. Without
      // this, re-registering would silence the site's failure detector.
      net_->RegisterHandler(
          site, [this, site, prev = std::move(prev)](Message& msg) {
            switch (msg.type) {
              case MessageType::kHeartbeat:
              case MessageType::kHbProbe:
              case MessageType::kHbProbeAck:
                prev(msg);
                return;
              default:
                Dispatch(site, msg);
            }
          });
    } else {
      net_->RegisterHandler(
          site, [this, site](Message& msg) { Dispatch(site, msg); });
    }
    n->locals.resize(groups_.size());
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      int m = groups_[gi]->MemberAtSite(site);
      n->locals[gi].member = m;
      n->locals[gi].first_block =
          m >= 0 ? groups_[gi]->FirstBlockOfMember(m) : 0;
    }
    n->model = DiskModelOf(site);
    const DiskSchedConfig& sched = DiskSchedOf(site);
    if (sched.modeled()) {
      n->storage = std::make_unique<SiteStorage>(sim_, n->model, sched);
    }
  } else {
    // The site already runs a Node for a sibling group; it only needs its
    // membership view of this group refreshed.
    Node* n = nit->second.get();
    const int m = g->MemberAtSite(site);
    n->locals[static_cast<size_t>(grp)].member = m;
    n->locals[static_cast<size_t>(grp)].first_block =
        m >= 0 ? g->FirstBlockOfMember(m) : 0;
  }
  return Status::OK();
}

const DiskModel& RaddNodeSystem::DiskModelOf(SiteId site) const {
  auto it = node_config_.site_disk.find(site);
  return it != node_config_.site_disk.end() ? it->second
                                            : node_config_.disk;
}

const DiskSchedConfig& RaddNodeSystem::DiskSchedOf(SiteId site) const {
  auto it = node_config_.site_disk_sched.find(site);
  return it != node_config_.site_disk_sched.end()
             ? it->second
             : node_config_.disk_sched;
}

void RaddNodeSystem::ChargeBackgroundIo(SiteId site, uint32_t units,
                                        Simulator::Callback done) {
  auto nit = nodes_.find(site);
  if (nit == nodes_.end()) {
    done();
    return;
  }
  Node* n = nit->second.get();
  // Charged at the site's first block: recovery sweeps are sequential
  // scans, so the address is representative for seek accounting.
  n->ScheduleDisk(IoClass::kRecovery, IoKind::kWrite, 0, units,
                  std::move(done));
}

RaddNodeSystem::CacheCounters RaddNodeSystem::CacheStats() const {
  CacheCounters total;
  for (const auto& [site, n] : nodes_) {
    if (!n->storage) continue;
    const BlockCache* c = n->storage->cache();
    total.hits += c->hits();
    total.misses += c->misses();
    total.stale_rejected += c->stale_rejected();
  }
  return total;
}

RaddNodeSystem::~RaddNodeSystem() = default;

SiteState RaddNodeSystem::Perceived(SiteId observer, SiteId target) const {
  auto it = presumed_.find({observer, target});
  if (it != presumed_.end()) return it->second;
  if (perceiver_) {
    // A detector can only distinguish reachable/unreachable; refine
    // "reachable" with the true state so recovering sites are handled by
    // the recovering protocol (a real system learns that state during the
    // reconnect handshake).
    SiteState detected = perceiver_(observer, target);
    if (detected == SiteState::kDown) return detected;
    return cluster_->StateOf(target);
  }
  return cluster_->StateOf(target);
}

uint64_t RaddNodeSystem::EpochOf(SiteId site) const {
  return status_service_ != nullptr ? status_service_->Epoch(site) : 0;
}

Status RaddNodeSystem::CheckMemberEpoch(int grp, int home,
                                        uint64_t epoch) const {
  if (status_service_ == nullptr) return Status::OK();
  return status_service_->CheckEpoch(
      groups_[static_cast<size_t>(grp)]->SiteOfMember(home), epoch);
}

uint64_t RaddNodeSystem::InFlightOps() const {
  uint64_t total = 0;
  for (const auto& [site, n] : nodes_) {
    total += n->reads.size() + n->writes.size();
  }
  return total;
}

bool RaddNodeSystem::Quiescent() const {
  for (const auto& [site, n] : nodes_) {
    if (!n->reads.empty() || !n->writes.empty()) return false;
    if (!n->parity_done.empty()) return false;
    if (!n->pending_local_writes.empty()) return false;
    if (!n->recons.empty()) return false;
    if (!n->batches.empty()) return false;
    for (const auto& [ps, coalescer] : n->staging) {
      if (!coalescer.empty()) return false;
    }
  }
  return true;
}

void RaddNodeSystem::ResetNodeVolatileState(SiteId site) {
  auto nit = nodes_.find(site);
  if (nit == nodes_.end()) return;
  Node* n = nit->second.get();
  for (auto& [op, timer] : n->parity_timers) sim_->Cancel(timer);
  n->parity_timers.clear();
  n->parity_done.clear();
  n->parity_tries.clear();
  n->parity_ops.clear();
  for (auto& [ps, timer] : n->flush_timers) sim_->Cancel(timer);
  n->flush_timers.clear();
  for (auto& [seq, batch] : n->batches) sim_->Cancel(batch.timer);
  n->batches.clear();
  n->inflight_keys.clear();
  n->staging.clear();
  n->batch_seen.clear();
  n->write_flows.clear();
  n->pending_local_writes.clear();
  n->waiting.clear();
  n->recons.clear();
  n->locks = LockManager();
  n->disk_free_at = 0;
  if (n->storage) n->storage->Reset();  // queued I/O and cache die too
  ++n->epoch;  // queued disk completions belong to the dead incarnation
  stats_.Add("node.volatile_reset");
  // Client operations issued from this site die with its process: their
  // callbacks would otherwise dangle forever.
  std::vector<uint64_t> dead_reads, dead_writes;
  for (const auto& [op, pr] : n->reads) dead_reads.push_back(op);
  for (const auto& [op, pw] : n->writes) dead_writes.push_back(op);
  for (uint64_t op : dead_reads) {
    FinishRead(site, op, Status::NetworkError("client site crashed"),
               Block(0));
  }
  for (uint64_t op : dead_writes) {
    FinishWrite(site, op, Status::NetworkError("client site crashed"));
  }
}

void RaddNodeSystem::SetDiskSlowFactor(SiteId site, uint32_t factor) {
  auto nit = nodes_.find(site);
  if (nit == nodes_.end()) return;
  nit->second->disk_slow = factor < 1 ? 1 : factor;
}

void RaddNodeSystem::SetPresumedState(SiteId observer, SiteId target,
                                      std::optional<SiteState> state) {
  if (state) {
    presumed_[{observer, target}] = *state;
  } else {
    presumed_.erase({observer, target});
  }
}

void RaddNodeSystem::Dispatch(SiteId site, Message& msg) {
  // A down site's network stack is gone: deliveries are dropped. (The
  // sender sees silence and relies on timeouts, as in a real network.)
  if (cluster_->StateOf(site) == SiteState::kDown) {
    stats_.Add("node.delivered_to_down_site");
    return;
  }
  Node* n = node(site);
  switch (msg.type) {
    case MessageType::kReadReq:
      n->OnReadReq(msg);
      break;
    case MessageType::kReadReply: {
      ReadReply rep = std::move(std::get<ReadReply>(msg.payload));
      auto it = n->reads.find(rep.op);
      if (it == n->reads.end()) return;
      if (rep.status.ok()) {
        FinishRead(site, rep.op, Status::OK(), std::move(rep.data));
      } else if (rep.status.IsDataLoss() || rep.status.IsUnavailable()) {
        // Block lost at the home site: reconstruct.
        PendingRead& pr = it->second;
        StartReadReconstruction(rep.op, pr);
      } else if (rep.status.IsStaleEpoch()) {
        // The read landed on a member an expansion moved the row away
        // from. StartRead re-resolves the hosting member, so the retry
        // routes to the block's current home.
        PendingRead& pr = it->second;
        sim_->Cancel(pr.timer);
        if (++pr.retries > node_config_.max_retries) {
          stats_.Add("node.read_retry_exhausted");
          FinishRead(site, rep.op, Status::NetworkError("read timed out"),
                     Block(0));
          return;
        }
        stats_.Add("node.stale_epoch_retry");
        StartRead(site, rep.op);
      } else {
        FinishRead(site, rep.op, rep.status, Block(0));
      }
      break;
    }
    case MessageType::kWriteReq:
      n->OnWriteReq(msg);
      break;
    case MessageType::kWriteReply:
    case MessageType::kSpareWriteReply: {
      auto rep = std::get<WriteReply>(msg.payload);
      auto it = n->writes.find(rep.op);
      if (it == n->writes.end()) return;
      if (rep.status.IsStaleEpoch()) {
        // The server knows a newer membership epoch for the home site than
        // this request carried. Reissue immediately: StartWrite re-reads
        // the current state and restamps, so the retry routes correctly.
        PendingWrite& pw = it->second;
        sim_->Cancel(pw.timer);
        if (++pw.retries > node_config_.max_retries) {
          stats_.Add("node.write_retry_exhausted");
          FinishWrite(site, rep.op, Status::NetworkError("write timed out"));
          return;
        }
        stats_.Add("node.stale_epoch_retry");
        StartWrite(site, rep.op);
        return;
      }
      if (rep.status.IsUnavailable()) {
        // Home said "block lost": redirect to the spare (degraded write).
        PendingWrite& pw = it->second;
        Node* client_node = node(pw.client);
        RaddGroup* g = groups_[static_cast<size_t>(pw.group)].get();
        const int home = HostMember(pw.group, pw.home, pw.index);
        SpareWriteReq req;
        req.op = rep.op;
        req.group = pw.group;
        req.home = home;
        req.row = pw.row;
        req.deadline = WriteDeadline(pw);
        req.home_epoch = EpochOf(g->SiteOfMember(home));
        req.data = pw.data;  // pw keeps its copy for retries
        req.uid = cluster_->site(pw.client)->uids()->Next();
        size_t wire = req.data.size();
        client_node->Send(
            g->SiteOfMember(
                static_cast<int>(g->layout().SpareSite(pw.row))),
            MessageType::kSpareWriteReq, std::move(req), wire);
        return;
      }
      FinishWrite(site, rep.op, rep.status);
      break;
    }
    case MessageType::kParityUpdate:
      n->OnParityUpdate(msg);
      break;
    case MessageType::kParityAck:
      n->OnParityAck(msg);
      break;
    case MessageType::kParityNack:
      n->OnParityNack(msg);
      break;
    case MessageType::kParityBatch:
      n->OnParityBatch(msg);
      break;
    case MessageType::kParityBatchAck:
      n->OnParityBatchAck(msg);
      break;
    case MessageType::kSpareReadReq:
      n->OnSpareReadReq(msg);
      break;
    case MessageType::kSpareReadReply: {
      SpareReadReply rep =
          std::move(std::get<SpareReadReply>(msg.payload));
      auto it = n->reads.find(rep.op);
      if (it == n->reads.end()) return;
      PendingRead& pr = it->second;
      if (rep.status.ok()) {
        stats_.Add("node.degraded_reads");
        stats_.Add("node.degraded_reads.spare");
        FinishRead(site, rep.op, Status::OK(), std::move(rep.data));
        return;
      }
      // Spare invalid. A recovering home may still hold a valid local
      // copy: try it before paying for reconstruction.
      SiteId home_site = groups_[static_cast<size_t>(pr.group)]->SiteOfMember(
          HostMember(pr.group, pr.home, pr.index));
      if (!pr.tried_home &&
          Perceived(pr.client, home_site) != SiteState::kDown) {
        pr.tried_home = true;
        node(pr.client)->Send(home_site, MessageType::kReadReq,
                              ReadReq{rep.op, pr.group, pr.row}, 0);
        return;
      }
      StartReadReconstruction(rep.op, pr);
      break;
    }
    case MessageType::kSpareTakeReq:
      n->OnSpareTakeReq(msg);
      break;
    case MessageType::kSpareInvalidate:
      n->OnSpareInvalidate(msg);
      break;
    case MessageType::kSpareTakeReply:
      n->OnSpareTakeReply(msg);
      break;
    case MessageType::kSpareWriteReq:
      n->OnSpareWriteReq(msg);
      break;
    case MessageType::kSpareWriteBack:
      n->OnSpareWriteBack(msg);
      break;
    case MessageType::kReconReq:
      n->OnReconReq(msg);
      break;
    case MessageType::kReconReply:
      n->OnReconReply(msg);
      break;
    default:
      break;  // untyped / detector traffic: not ours
  }
}

void RaddNodeSystem::AsyncRead(SiteId client, int home, BlockNum index,
                               ReadCallback cb) {
  AsyncRead(client, /*grp=*/0, home, index, std::move(cb));
}

void RaddNodeSystem::AsyncRead(SiteId client, int grp, int home,
                               BlockNum index, ReadCallback cb) {
  uint64_t op = NewOpId(client);
  PendingRead pr;
  pr.client = client;
  pr.group = grp;
  pr.home = home;
  pr.index = index;
  pr.row = layout(grp).DataToRow(static_cast<SiteId>(home), index);
  pr.cb = std::move(cb);
  pr.start = sim_->Now();
  node(client)->reads[op] = std::move(pr);
  StartRead(client, op);
}

uint64_t RaddNodeSystem::NewOpId(SiteId client) {
  if (sim_->num_shards() == 1) return next_op_++;
  // Sharded: a shared counter would make id assignment depend on thread
  // timing. Per-site minting is deterministic; the site in the high bits
  // keeps ids unique across sites.
  Node* n = node(client);
  return (static_cast<uint64_t>(client) + 1) << 40 | n->next_local_op++;
}

void RaddNodeSystem::StartReadReconstruction(uint64_t op,
                                             PendingRead& pr) {
  node(pr.client)->StartReconstruction(
      op, pr.group, pr.home, pr.row,
      [this, op, client = pr.client](Status st, Block data, Uid logical) {
        auto rit = node(client)->reads.find(op);
        if (rit == node(client)->reads.end()) return;
        if (!st.ok()) {
          FinishRead(client, op, st, Block(0));
          return;
        }
        PendingRead& r = rit->second;
        RaddGroup* g = groups_[static_cast<size_t>(r.group)].get();
        // Materialize into the spare (asynchronous side effect), but only
        // while the home site is down — a recovering home's own copy is
        // repaired by its sweep instead.
        const int home = HostMember(r.group, r.home, r.index);
        if (g->config().materialize_on_degraded_read &&
            Perceived(r.client, g->SiteOfMember(home)) ==
                SiteState::kDown) {
          SpareWriteBack wb;
          wb.group = r.group;
          wb.home = home;
          wb.row = r.row;
          wb.home_epoch = EpochOf(g->SiteOfMember(home));
          wb.data = data;  // the read's caller still needs `data`
          wb.logical_uid = logical;
          size_t wire = wb.data.size();
          node(r.client)->Send(
              g->SiteOfMember(
                  static_cast<int>(g->layout().SpareSite(r.row))),
              MessageType::kSpareWriteBack, std::move(wb), wire);
        }
        FinishRead(client, op, Status::OK(), std::move(data));
      },
      /*for_read=*/true);
}

void RaddNodeSystem::StartRead(SiteId client, uint64_t op) {
  PendingRead& pr = node(client)->reads.at(op);
  pr.tried_home = false;
  // Reads are idempotent: a lost request or reply is simply retried.
  pr.timer = sim_->Schedule(
      4 * node_config_.retry_timeout, [this, client, op]() {
        auto rit = node(client)->reads.find(op);
        if (rit == node(client)->reads.end()) return;
        if (++rit->second.retries > node_config_.max_retries) {
          stats_.Add("node.read_retry_exhausted");
          FinishRead(client, op, Status::NetworkError("read timed out"),
                     Block(0));
          return;
        }
        stats_.Add("node.read_retry");
        StartRead(client, op);
      });
  RaddGroup* g = groups_[static_cast<size_t>(pr.group)].get();
  // pr.home stays the row's logical owner across retries; each (re)issue
  // resolves the member currently hosting its block, so a retry after an
  // expansion move lands on the block's new home.
  const int home = HostMember(pr.group, pr.home, pr.index);
  SiteId home_site = g->SiteOfMember(home);
  Node* client_node = node(pr.client);
  SiteState state = Perceived(pr.client, home_site);
  if (state == SiteState::kDown || state == SiteState::kRecovering) {
    SiteId spare_site =
        g->SiteOfMember(static_cast<int>(g->layout().SpareSite(pr.row)));
    if (g->layout().dual_parity() &&
        Perceived(pr.client, spare_site) == SiteState::kDown) {
      // Home and spare both unreachable (a double failure): asking the
      // dead spare would only burn the retry budget, so go straight to
      // the two-erasure decode.
      stats_.Add("node.read_spare_down");
      StartReadReconstruction(op, pr);
      return;
    }
    // Spare first; its reply drives the rest of the state machine.
    client_node->Send(spare_site, MessageType::kSpareReadReq,
                      SpareReadReq{op, pr.group, home, pr.row}, 0);
    return;
  }
  client_node->Send(home_site, MessageType::kReadReq,
                    ReadReq{op, pr.group, pr.row}, 0);
}

void RaddNodeSystem::AsyncWrite(SiteId client, int home, BlockNum index,
                                Block data, WriteCallback cb) {
  AsyncWrite(client, /*grp=*/0, home, index, std::move(data), std::move(cb));
}

void RaddNodeSystem::AsyncWrite(SiteId client, int grp, int home,
                                BlockNum index, Block data, WriteCallback cb) {
  uint64_t op = NewOpId(client);
  PendingWrite pw;
  pw.client = client;
  pw.group = grp;
  pw.home = home;
  pw.index = index;
  pw.row = layout(grp).DataToRow(static_cast<SiteId>(home), index);
  pw.data = std::move(data);
  pw.cb = std::move(cb);
  pw.start = sim_->Now();
  node(client)->writes[op] = std::move(pw);
  StartWrite(client, op);
}

void RaddNodeSystem::StartWrite(SiteId client, uint64_t op) {
  PendingWrite& pw = node(client)->writes.at(op);
  RaddGroup* g = groups_[static_cast<size_t>(pw.group)].get();
  // As in StartRead: resolve the hosting member per (re)issue so retries
  // follow expansion moves; pw.home remains the logical owner.
  const int home = HostMember(pw.group, pw.home, pw.index);
  SiteId home_site = g->SiteOfMember(home);
  Node* client_node = node(pw.client);
  ArmWriteTimer(client, op);
  if (Perceived(pw.client, home_site) == SiteState::kDown) {
    SpareWriteReq req;
    req.op = op;
    req.group = pw.group;
    req.home = home;
    req.row = pw.row;
    req.deadline = WriteDeadline(pw);
    req.home_epoch = EpochOf(home_site);
    req.data = pw.data;  // pw keeps its copy for retries
    req.uid = cluster_->site(pw.client)->uids()->Next();
    size_t wire = req.data.size();
    client_node->Send(
        g->SiteOfMember(static_cast<int>(g->layout().SpareSite(pw.row))),
        MessageType::kSpareWriteReq, std::move(req), wire);
    return;
  }
  WriteReq req;
  req.op = op;
  req.group = pw.group;
  req.row = pw.row;
  req.home = home;
  req.deadline = WriteDeadline(pw);
  req.home_epoch = EpochOf(home_site);
  req.data = pw.data;  // pw keeps its copy for retries
  size_t wire = req.data.size();
  client_node->Send(home_site, MessageType::kWriteReq, std::move(req), wire);
}

SimTime RaddNodeSystem::WriteDeadline(const PendingWrite& pw) const {
  // ArmWriteTimer fires every 4*retry_timeout and gives up after
  // max_retries retries, so the client abandons the op at exactly this
  // time; any request copy arriving later is a zombie.
  return pw.start +
         static_cast<SimTime>(node_config_.max_retries + 1) * 4 *
             node_config_.retry_timeout;
}

void RaddNodeSystem::ArmWriteTimer(SiteId client, uint64_t op) {
  auto it = node(client)->writes.find(op);
  if (it == node(client)->writes.end()) return;
  it->second.timer = sim_->Schedule(
      4 * node_config_.retry_timeout, [this, client, op]() {
        auto wit = node(client)->writes.find(op);
        if (wit == node(client)->writes.end()) return;
        if (++wit->second.retries > node_config_.max_retries) {
          stats_.Add("node.write_retry_exhausted");
          FinishWrite(client, op, Status::NetworkError("write timed out"));
          return;
        }
        stats_.Add("node.write_retry");
        StartWrite(client, op);
      });
}

void RaddNodeSystem::FinishRead(SiteId client, uint64_t op, Status st,
                                Block data) {
  auto it = node(client)->reads.find(op);
  if (it == node(client)->reads.end()) return;
  sim_->Cancel(it->second.timer);
  ReadCallback cb = std::move(it->second.cb);
  SimTime latency = sim_->Now() - it->second.start;
  node(client)->reads.erase(it);
  cb(st, data, latency);
  // The callback has seen the data; recycle the buffer for the next
  // block-sized payload this node touches.
  arena_.Return(std::move(data));
}

void RaddNodeSystem::FinishWrite(SiteId client, uint64_t op, Status st) {
  auto it = node(client)->writes.find(op);
  if (it == node(client)->writes.end()) return;
  sim_->Cancel(it->second.timer);
  WriteCallback cb = std::move(it->second.cb);
  SimTime latency = sim_->Now() - it->second.start;
  node(client)->writes.erase(it);
  cb(st, latency);
}

RaddNodeSystem::TimedRead RaddNodeSystem::Read(SiteId client, int home,
                                               BlockNum index) {
  return Read(client, /*grp=*/0, home, index);
}

RaddNodeSystem::TimedRead RaddNodeSystem::Read(SiteId client, int grp,
                                               int home, BlockNum index) {
  TimedRead out;
  bool done = false;
  AsyncRead(client, grp, home, index,
            [&](Status st, const Block& data, SimTime latency) {
              out.status = st;
              out.data = data;
              out.latency = latency;
              done = true;
            });
  sim_->RunUntilPredicate([&]() { return done; });
  if (!done) out.status = Status::Internal("simulation ran dry");
  return out;
}

RaddNodeSystem::TimedWrite RaddNodeSystem::Write(SiteId client, int home,
                                                 BlockNum index,
                                                 const Block& data) {
  return Write(client, /*grp=*/0, home, index, data);
}

RaddNodeSystem::TimedWrite RaddNodeSystem::Write(SiteId client, int grp,
                                                 int home, BlockNum index,
                                                 const Block& data) {
  TimedWrite out;
  bool done = false;
  AsyncWrite(client, grp, home, index, data, [&](Status st, SimTime latency) {
    out.status = st;
    out.latency = latency;
    done = true;
  });
  sim_->RunUntilPredicate([&]() { return done; });
  if (!done) out.status = Status::Internal("simulation ran dry");
  return out;
}

}  // namespace radd
