#include "core/sweeper.h"

namespace radd {

RecoverySweeper::RecoverySweeper(Simulator* sim, RaddGroup* group,
                                 SiteStatusService* service,
                                 const SweeperConfig& config)
    : sim_(sim), group_(group), service_(service), config_(config) {}

void RecoverySweeper::Start() {
  if (started_) return;
  started_ = true;
  service_->AddListener([this](SiteId site, SiteState state, uint64_t) {
    if (state != SiteState::kRecovering) return;
    const int member = group_->MemberAtSite(site);
    if (member >= 0) Pump(member);
  });
  // Pick up members already mid-recovery when the sweeper comes online.
  for (int m = 0; m < group_->num_members(); ++m) {
    if (service_->StateOf(group_->SiteOfMember(m)) == SiteState::kRecovering) {
      Pump(m);
    }
  }
}

BlockNum RecoverySweeper::cursor(int member) const {
  auto it = sweeps_.find(member);
  return it == sweeps_.end() ? 0 : it->second.cursor;
}

bool RecoverySweeper::active(int member) const {
  auto it = sweeps_.find(member);
  return it != sweeps_.end() && it->second.active;
}

void RecoverySweeper::Pump(int member) {
  Sweep& sw = sweeps_[member];
  if (sw.active) return;  // a tick chain is already running
  sw.active = true;
  if (sw.cursor > 0) stats_.Add("sweeper.resumes");
  stats_.Add("sweeper.sweeps_started");
  sim_->Schedule(0, [this, member]() { Tick(member); });
}

void RecoverySweeper::Tick(int member) {
  Sweep& sw = sweeps_[member];
  const SiteId site = group_->SiteOfMember(member);
  if (service_->StateOf(site) != SiteState::kRecovering) {
    // The site left the recovering state under us (crashed again, or an
    // oracle marked it up). End the chain but keep the cursor: the next
    // kRecovering transition resumes instead of re-draining from row 0.
    sw.active = false;
    return;
  }
  stats_.Add("sweeper.ticks");

  int budget = config_.rows_per_tick;
  if (config_.load_probe &&
      config_.load_probe() >= config_.backpressure_threshold) {
    budget = 1;
    stats_.Add("sweeper.backpressure_ticks");
  }

  OpCounts ops;
  const BlockNum rows = group_->config().rows;
  while (budget > 0 && sw.cursor < rows) {
    Status st = group_->RecoverRow(member, sw.cursor, &ops);
    if (!st.ok()) {
      // Typically Blocked (a source for reconstruction is unavailable).
      // Leave the cursor on this row and retry next tick — another site's
      // recovery may unblock it.
      stats_.Add("sweeper.row_errors");
      break;
    }
    ++sw.cursor;
    --budget;
    stats_.Add("sweeper.rows_swept");
  }
  stats_.Observe("sweeper.tick_ops", ops.Total());

  if (sw.cursor >= rows) {
    auto dirty = group_->FirstUnrecoveredRow(member);
    if (dirty.ok()) {
      if (*dirty >= rows) {
        // Verification scan and MarkUp run in this same simulator event,
        // so no spare commit can slip between "clean" and "up".
        if (service_->MarkUp(site).ok()) {
          stats_.Add("sweeper.completed");
          sw.active = false;
          sw.cursor = 0;
          return;
        }
      } else {
        // Rows behind the cursor were re-dirtied (e.g. spares absorbed
        // writes during a second outage). Rewind and keep sweeping.
        sw.cursor = *dirty;
        stats_.Add("sweeper.rescans");
      }
    } else {
      stats_.Add("sweeper.verify_errors");
    }
  }
  sim_->Schedule(config_.tick_interval, [this, member]() { Tick(member); });
}

}  // namespace radd
