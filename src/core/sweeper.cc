#include "core/sweeper.h"

#include <memory>
#include <utility>

namespace radd {

RecoverySweeper::RecoverySweeper(Simulator* sim, RaddGroup* group,
                                 SiteStatusService* service,
                                 const SweeperConfig& config)
    : RecoverySweeper(sim, std::vector<RaddGroup*>{group}, service, config) {}

RecoverySweeper::RecoverySweeper(Simulator* sim,
                                 std::vector<RaddGroup*> groups,
                                 SiteStatusService* service,
                                 const SweeperConfig& config)
    : sim_(sim),
      groups_(std::move(groups)),
      service_(service),
      config_(config) {}

void RecoverySweeper::Start() {
  if (started_) return;
  started_ = true;
  service_->AddListener([this](SiteId site, SiteState state, uint64_t) {
    if (state == SiteState::kDown && config_.disk_charge) {
      // A disk-paced chain dies with the site's queues (the in-flight
      // charge completion is fenced by the crash); clear `active` so the
      // next kRecovering transition pumps a fresh chain. Wall-clock
      // chains keep their timer and terminate on their own next tick.
      for (size_t g = 0; g < groups_.size(); ++g) {
        const int member = groups_[g]->MemberAtSite(site);
        if (member < 0) continue;
        auto it = sweeps_.find({static_cast<int>(g), member});
        if (it != sweeps_.end()) it->second.active = false;
      }
      return;
    }
    if (state != SiteState::kRecovering) return;
    // A §4 site hosts one drive per group it belongs to; every such group
    // needs its own sweep, and they run concurrently.
    bool hosted = false;
    for (size_t g = 0; g < groups_.size(); ++g) {
      const int member = groups_[g]->MemberAtSite(site);
      if (member >= 0) {
        hosted = true;
        Pump(static_cast<int>(g), member);
      }
    }
    if (!hosted) {
      // A site hosting no drive (the reserved expansion site before any
      // group adopts it) has no recovery debt; without this it would sit
      // in kRecovering forever, since no sweep ever marks it up. Scheduled
      // so the service isn't re-entered mid-notification.
      sim_->Schedule(0, [this, site]() {
        if (service_->StateOf(site) == SiteState::kRecovering) {
          (void)service_->MarkUp(site);
        }
      });
    }
  });
  // Pick up members already mid-recovery when the sweeper comes online.
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (int m = 0; m < groups_[g]->num_members(); ++m) {
      if (service_->StateOf(groups_[g]->SiteOfMember(m)) ==
          SiteState::kRecovering) {
        Pump(static_cast<int>(g), m);
      }
    }
  }
}

BlockNum RecoverySweeper::cursor(int grp, int member) const {
  auto it = sweeps_.find({grp, member});
  return it == sweeps_.end() ? 0 : it->second.cursor;
}

bool RecoverySweeper::active(int grp, int member) const {
  auto it = sweeps_.find({grp, member});
  return it != sweeps_.end() && it->second.active;
}

void RecoverySweeper::Pump(int grp, int member) {
  Sweep& sw = sweeps_[{grp, member}];
  if (sw.active) return;  // a tick chain is already running
  sw.active = true;
  if (sw.cursor > 0) stats_.Add("sweeper.resumes");
  stats_.Add("sweeper.sweeps_started");
  sim_->Schedule(0, [this, grp, member]() { Tick(grp, member); });
}

bool RecoverySweeper::TryMarkUp(SiteId site) {
  // Cross-group gate: the site may be clean in the group whose sweep just
  // finished but still dirty in a sibling group. Verify every slice in
  // this same simulator event (metadata-only scans) so no spare commit can
  // interleave between "all clean" and "up".
  for (size_t g = 0; g < groups_.size(); ++g) {
    const int m = groups_[g]->MemberAtSite(site);
    if (m < 0) continue;
    auto dirty = groups_[g]->FirstUnrecoveredRow(m);
    if (!dirty.ok() || *dirty < groups_[g]->NumRows()) return false;
  }
  if (!service_->MarkUp(site).ok()) return false;
  // Reset every slice's cursor; still-active sibling chains terminate on
  // their next tick (the site is no longer recovering) with cursor 0.
  for (size_t g = 0; g < groups_.size(); ++g) {
    const int m = groups_[g]->MemberAtSite(site);
    if (m < 0) continue;
    sweeps_[{static_cast<int>(g), m}].cursor = 0;
  }
  return true;
}

void RecoverySweeper::Tick(int grp, int member) {
  Sweep& sw = sweeps_[{grp, member}];
  RaddGroup* group = groups_[static_cast<size_t>(grp)];
  const SiteId site = group->SiteOfMember(member);
  if (service_->StateOf(site) != SiteState::kRecovering) {
    // The site left the recovering state under us (crashed again, marked
    // up by a sibling group's sweep, or an oracle). End the chain but keep
    // the cursor: the next kRecovering transition resumes instead of
    // re-draining from row 0.
    sw.active = false;
    return;
  }
  stats_.Add("sweeper.ticks");

  int budget = config_.rows_per_tick;
  if (config_.load_probe &&
      config_.load_probe() >= config_.backpressure_threshold) {
    budget = 1;
    stats_.Add("sweeper.backpressure_ticks");
  }

  OpCounts ops;
  uint32_t swept_now = 0;
  const BlockNum first_swept = sw.cursor;
  const BlockNum rows = group->NumRows();
  while (budget > 0 && sw.cursor < rows) {
    Status st = group->RecoverRow(member, sw.cursor, &ops);
    if (!st.ok()) {
      // Typically Blocked (a source for reconstruction is unavailable).
      // Leave the cursor on this row and retry next tick — another site's
      // recovery may unblock it.
      stats_.Add("sweeper.row_errors");
      break;
    }
    ++sw.cursor;
    --budget;
    ++swept_now;
    stats_.Add("sweeper.rows_swept");
  }
  stats_.Observe("sweeper.tick_ops", ops.Total());

  if (sw.cursor >= rows) {
    auto dirty = group->FirstUnrecoveredRow(member);
    if (dirty.ok()) {
      if (*dirty >= rows) {
        // This group is clean; the site goes up only when its drives in
        // every sibling group are clean too. The last-finishing sweep's
        // verification and the MarkUp share one simulator event.
        if (TryMarkUp(site)) {
          stats_.Add("sweeper.completed");
          sw.active = false;
          sw.cursor = 0;
          return;
        }
        // A sibling slice is still dirty (or MarkUp was refused): keep
        // ticking so this group re-verifies — and re-sweeps rows that get
        // re-dirtied — until the whole site converges.
      } else {
        // Rows behind the cursor were re-dirtied (e.g. spares absorbed
        // writes during a second outage). Rewind and keep sweeping.
        sw.cursor = *dirty;
        stats_.Add("sweeper.rescans");
      }
    } else {
      stats_.Add("sweeper.verify_errors");
    }
  }
  if (config_.disk_charge) {
    // Disk-paced mode: the tick's repairs queue as recovery-class writes
    // at the recovering site; the next tick runs when they complete, so
    // sweep speed follows the disk's real backlog instead of a fixed gap.
    // An idle tick (blocked row, verification pass) still charges one
    // unit — that is the retry delay.
    stats_.Add("sweeper.disk_paced_ticks");
    auto barrier = std::make_shared<int>(1);
    auto next = [this, grp, member, barrier]() {
      if (--*barrier == 0) Tick(grp, member);
    };
    if (config_.charge_source_reads && swept_now > 0) {
      // Charge each repaired row's reconstruction reads where they land:
      // the surviving source sites. The next tick then waits for the
      // slowest source — under the rotated layout the same few sites eat
      // every read, under a declustered table they spread cluster-wide.
      std::map<SiteId, uint32_t> reads;
      for (BlockNum r = first_swept; r < first_swept + swept_now; ++r) {
        for (SiteId s : group->layout().ReconstructionSources(
                 static_cast<SiteId>(member), r)) {
          ++reads[group->SiteOfMember(static_cast<int>(s))];
        }
      }
      for (const auto& [src_site, units] : reads) {
        ++*barrier;
        config_.disk_charge(src_site, units, next);
      }
    }
    config_.disk_charge(site, swept_now > 0 ? swept_now : 1, next);
    return;
  }
  sim_->Schedule(config_.tick_interval,
                 [this, grp, member]() { Tick(grp, member); });
}

void RecoverySweeper::StartMigration(int grp, std::function<void()> on_done) {
  RaddGroup* group = groups_[static_cast<size_t>(grp)];
  if (!group->ExpansionPending()) {
    if (on_done) on_done();
    return;
  }
  migrations_[grp] = std::move(on_done);
  stats_.Add("sweeper.migrations_started");
  sim_->Schedule(0, [this, grp]() { MigrateTick(grp); });
}

void RecoverySweeper::MigrateTick(int grp) {
  RaddGroup* group = groups_[static_cast<size_t>(grp)];
  stats_.Add("sweeper.migration_ticks");

  int budget = config_.rows_per_tick;
  if (config_.load_probe &&
      config_.load_probe() >= config_.backpressure_threshold) {
    budget = 1;
    stats_.Add("sweeper.backpressure_ticks");
  }

  uint32_t moved = 0;
  if (group->ExpansionPending()) {
    auto applied = group->MigrateStep(budget);
    if (applied.ok()) {
      moved = static_cast<uint32_t>(*applied);
      stats_.Add("sweeper.rows_moved", moved);
    } else {
      stats_.Add("sweeper.migration_errors");
    }
  }
  if (!group->ExpansionPending()) {
    // The last move committed the new epoch (or the expansion was aborted
    // under us). Hand off in this same simulator event.
    stats_.Add("sweeper.migrations_completed");
    auto it = migrations_.find(grp);
    std::function<void()> done;
    if (it != migrations_.end()) {
      done = std::move(it->second);
      migrations_.erase(it);
    }
    if (done) done();
    return;
  }
  // Pace like a recovery sweep: the moves land as recovery-class writes
  // at the new member's site. A tick that applied nothing (every queued
  // move hit an un-acked parity delta) still charges one unit — the
  // retry delay.
  const SiteId dest = group->SiteOfMember(group->num_members() - 1);
  if (config_.disk_charge) {
    stats_.Add("sweeper.disk_paced_ticks");
    config_.disk_charge(dest, moved > 0 ? moved : 1,
                        [this, grp]() { MigrateTick(grp); });
    return;
  }
  sim_->Schedule(config_.tick_interval, [this, grp]() { MigrateTick(grp); });
}

}  // namespace radd
