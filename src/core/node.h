// RaddNodeSystem — the message-driven implementation of the RADD protocol
// over the simulated network (paper §3 algorithms as an actual
// distributed protocol, plus §5's lost-message handling).
//
// The synchronous RaddGroup (core/radd.h) is the reference model with
// exact Figure-3 accounting; this layer executes the same steps as real
// request/reply message flows with disk and network latency, so it
// additionally answers questions the cost model cannot: operation
// *latency* (concurrent sub-operations overlap), behaviour under message
// loss (parity updates are retransmitted until acknowledged, and a write
// only completes once its parity site acknowledged — §5's commit
// condition), behaviour under partitions, and lock-based concurrency
// control (§3.3: data and spare blocks are locked, parity blocks never).
//
// Idempotence under retransmission uses the paper's own UID machinery: a
// parity site recognizes a duplicate update because the incoming UID
// equals its UID-array entry for that member, and acknowledges without
// re-applying the mask.

#ifndef RADD_CORE_NODE_H_
#define RADD_CORE_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/status_service.h"
#include "common/block_arena.h"
#include "core/parity_coalescer.h"
#include "core/radd.h"
#include "disk/scheduler.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "txn/lock_manager.h"

namespace radd {

class Transport;

/// Tunables of the protocol layer.
struct NodeConfig {
  DiskModel disk;
  /// Shape of each site's disk subsystem (spindle count, scheduling
  /// policy, seek modeling, block cache). The default — one spindle,
  /// FIFO, no cache — keeps the legacy closed-form serial disk clock,
  /// bit-identical to the pre-scheduler protocol.
  DiskSchedConfig disk_sched;
  /// Heterogeneous fleets: per-site overrides of the base DiskModel
  /// and/or the disk subsystem shape. Sites absent from a map use the
  /// defaults above.
  std::map<SiteId, DiskModel> site_disk;
  std::map<SiteId, DiskSchedConfig> site_disk_sched;
  /// Retransmission timeout for parity updates / degraded writes when the
  /// network can lose messages.
  SimTime retry_timeout = Millis(250);
  /// Retransmissions before an operation fails with NetworkError.
  int max_retries = 25;
  /// Reconstruction retries on UID validation failure (§3.3).
  int max_reconstruct_attempts = 5;
  /// Write-combining parity pipeline (DESIGN.md §10). Off by default:
  /// the unbatched path is then taken verbatim, bit-identical to the
  /// pre-batching protocol.
  ParityBatchConfig parity_batch;
};

/// One RADD group hosted by the node system: the group's tuning knobs
/// plus an optional explicit member list (empty = the identity group:
/// member m is site m with offset 0).
struct GroupSpec {
  RaddConfig config;
  std::vector<LogicalDrive> members;
};

/// The distributed RADD: one protocol node per cluster site, hosting one
/// or more RADD groups (§4). All groups share the simulator, network and
/// cluster; per-group state (lock rows, dedupe tables, parity staging) is
/// keyed by group id, and batched parity frames never mix groups.
class RaddNodeSystem {
 public:
  using ReadCallback =
      std::function<void(Status, const Block&, SimTime latency)>;
  using WriteCallback = std::function<void(Status, SimTime latency)>;

  RaddNodeSystem(Simulator* sim, Network* net, Cluster* cluster,
                 const RaddConfig& radd_config,
                 const NodeConfig& node_config = {});

  /// Multi-group form: one protocol stack running every group in `specs`
  /// side by side. All specs must share one block size (they feed one
  /// buffer arena). At most one member per (group, site).
  RaddNodeSystem(Simulator* sim, Network* net, Cluster* cluster,
                 std::vector<GroupSpec> specs,
                 const NodeConfig& node_config = {});
  ~RaddNodeSystem();

  /// Issues a read of member `home`'s data block `index` from `client`
  /// (group 0; the single-group API).
  void AsyncRead(SiteId client, int home, BlockNum index, ReadCallback cb);

  /// Group-addressed read: member `home` of group `grp`.
  void AsyncRead(SiteId client, int grp, int home, BlockNum index,
                 ReadCallback cb);

  /// Issues a write (group 0).
  void AsyncWrite(SiteId client, int home, BlockNum index, Block data,
                  WriteCallback cb);

  /// Group-addressed write.
  void AsyncWrite(SiteId client, int grp, int home, BlockNum index,
                  Block data, WriteCallback cb);

  /// Blocking facades: run the simulator until the operation completes.
  struct TimedRead {
    Status status;
    Block data{0};
    SimTime latency = 0;
  };
  TimedRead Read(SiteId client, int home, BlockNum index);
  TimedRead Read(SiteId client, int grp, int home, BlockNum index);
  struct TimedWrite {
    Status status;
    SimTime latency = 0;
  };
  TimedWrite Write(SiteId client, int home, BlockNum index,
                   const Block& data);
  TimedWrite Write(SiteId client, int grp, int home, BlockNum index,
                   const Block& data);

  /// Overrides the oracle failure detector for `observer`'s view of
  /// `target` (partition handling, §5: the majority side treats the
  /// unreachable site as down). Pass nullopt to clear.
  void SetPresumedState(SiteId observer, SiteId target,
                        std::optional<SiteState> state);

  /// Installs a live failure-detector callback (e.g. HeartbeatDetector's
  /// Perceived) consulted on every state decision; explicit
  /// SetPresumedState entries take precedence over it, and the cluster
  /// oracle is the fallback when neither is set. Pass nullptr to remove.
  using Perceiver = std::function<SiteState(SiteId observer, SiteId target)>;
  void SetPerceiver(Perceiver perceiver) {
    perceiver_ = std::move(perceiver);
  }

  /// Connects the epoch-stamped membership service. Once set, writes,
  /// spare writes, parity updates and spare write-backs carry the epoch of
  /// the home site whose data they touch, and receivers reject messages
  /// stamped with an epoch older than the service's current one
  /// (StaleEpoch, retryable) — closing the window where a delayed
  /// pre-transition message, applied after a fast down -> recovering -> up
  /// cycle, would act on a stale view of the membership. Without a service
  /// all stamps are 0 and no check is performed (oracle-mode tests).
  void SetStatusService(const SiteStatusService* service) {
    status_service_ = service;
  }

  /// Routes every protocol send through `transport` instead of straight
  /// to the Network (net/transport.h). The DES transport frames each
  /// message through the packed codec before re-entering the simulated
  /// network — semantics identical when the codec is lossless, which the
  /// differential chaos tests assert. nullptr (the default) restores the
  /// direct send path, bit-identical to the pre-transport protocol.
  /// Heartbeat traffic is the detector's own and stays on the Network.
  void SetTransport(Transport* transport) { transport_ = transport; }

  /// Client operations currently in flight (reads + writes). Used as the
  /// recovery sweeper's backpressure probe.
  uint64_t InFlightOps() const;

  /// True when no client operation, server-side write flow, parity
  /// retransmission or reconstruction is outstanding anywhere — the
  /// protocol layer has fully drained (heartbeat traffic excluded; that
  /// belongs to the detector).
  bool Quiescent() const;

  /// Discards the in-memory protocol state of `site`'s node — lock table,
  /// retransmission timers, dedupe tables, in-flight server flows — and
  /// fails (NetworkError) any client operation issued *from* that site.
  /// Call when the site crashes: a restarted process comes up cold, it
  /// does not resume half-held locks or remembered acks.
  void ResetNodeVolatileState(SiteId site);

  /// Gray-failure injection: multiplies `site`'s disk service time by
  /// `factor` (1 = healthy). The site stays up and correct, just slow.
  void SetDiskSlowFactor(SiteId site, uint32_t factor);

  /// Charges `units` background (recovery-class) disk writes to `site`'s
  /// disk subsystem and runs `done` at their completion — the recovery
  /// sweeper's disk-pacing hook, so sweep I/O competes with foreground
  /// traffic in the site's queues instead of pacing itself by wall-clock
  /// delays. Works in legacy mode too (the charge serializes on the
  /// site's closed-form clock). `done` is dropped if the site crashes
  /// before the charge completes.
  void ChargeBackgroundIo(SiteId site, uint32_t units,
                          Simulator::Callback done);

  /// Cache observability: summed hit/miss/stale-rejection counters over
  /// every site's block cache (all zero when caches are off).
  struct CacheCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_rejected = 0;
  };
  CacheCounters CacheStats() const;

  /// The reference model sharing the same cluster state; used for
  /// recovery sweeps and invariant checking. The no-arg form is group 0
  /// (the single-group API).
  RaddGroup* group() { return groups_.front().get(); }
  RaddGroup* group(int grp) { return groups_[static_cast<size_t>(grp)].get(); }
  const RaddGroup* group(int grp) const {
    return groups_[static_cast<size_t>(grp)].get();
  }
  int num_groups() const { return static_cast<int>(groups_.size()); }

  const PlacementMap& layout() const { return groups_.front()->layout(); }
  const PlacementMap& layout(int grp) const {
    return groups_[static_cast<size_t>(grp)]->layout();
  }

  /// Online expansion entry point: begins adding `drive` to group `grp`
  /// (RaddGroup::BeginExpansion) and wires a protocol Node for its site —
  /// handler registration, per-group locals, disk model/scheduler — so the
  /// new member answers messages immediately. Drive the actual migration
  /// through RecoverySweeper::StartMigration (or MigrateStep directly).
  Status AddGroupMember(int grp, const LogicalDrive& drive);
  Stats* mutable_stats() { return &stats_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Node;

  /// `site`'s effective disk latency model (per-site override or default).
  const DiskModel& DiskModelOf(SiteId site) const;
  /// `site`'s effective disk subsystem shape.
  const DiskSchedConfig& DiskSchedOf(SiteId site) const;

  /// State that `observer` believes `target` to be in.
  SiteState Perceived(SiteId observer, SiteId target) const;

  /// Member currently *hosting* owner `home`'s data block `index` in
  /// group `grp` — identical to `home` except for blocks migrated by an
  /// online expansion. Resolution goes by data index, not row: an
  /// expansion owner holds several blocks of one row, which only the
  /// index disambiguates. Every message that names a member resolves
  /// through this at send time so retries chase a mid-migration move.
  int HostMember(int grp, int home, BlockNum index) const;

  /// Membership epoch of `site` (0 when no status service is connected).
  uint64_t EpochOf(SiteId site) const;
  /// OK when `epoch` is current for member `home`'s site (in group `grp`);
  /// StaleEpoch when a status service is connected and knows a newer one.
  Status CheckMemberEpoch(int grp, int home, uint64_t epoch) const;

  void Dispatch(SiteId site, Message& msg);
  Node* node(SiteId s) { return nodes_.at(s).get(); }

  Simulator* sim_;
  Network* net_;
  Transport* transport_ = nullptr;  ///< optional send-path override
  Cluster* cluster_;
  NodeConfig node_config_;
  std::vector<std::unique_ptr<RaddGroup>> groups_;
  /// Free-list for block-sized buffers: message handlers lease scratch
  /// blocks and return spent payload buffers here instead of reallocating.
  BlockArena arena_;
  Stats stats_;
  std::map<SiteId, std::unique_ptr<Node>> nodes_;
  std::map<std::pair<SiteId, SiteId>, SiteState> presumed_;
  Perceiver perceiver_;
  const SiteStatusService* status_service_ = nullptr;
  /// Op-id source on an unsharded simulator: one global monotone counter,
  /// so lock ids (~op) preserve issue order everywhere. Sharded runs mint
  /// per-site ids instead (see NewOpId).
  uint64_t next_op_ = 1;

  // --- pending client operations -------------------------------------------
  struct PendingRead {
    SiteId client;
    int group = 0;
    int home;          // logical owner; hosts resolve via HostMember
    BlockNum index;    // owner's data index (host resolution key)
    BlockNum row;
    ReadCallback cb;
    SimTime start;
    int retries = 0;
    bool tried_home = false;
    uint64_t timer = 0;
  };
  struct PendingWrite {
    SiteId client;
    int group = 0;
    int home;          // logical owner; hosts resolve via HostMember
    BlockNum index;    // owner's data index (host resolution key)
    BlockNum row;
    Block data{0};
    WriteCallback cb;
    SimTime start;
    int retries = 0;
    uint64_t timer = 0;
  };
  // The pending-op tables live inside each client site's Node (per-site,
  // so concurrent shards never share them); every function below runs at
  // the client site and takes the client explicitly.

  /// Mints a fresh op id for an operation issued from `client`. Unsharded:
  /// the global counter (ids totally ordered by issue time — wait-die
  /// ordering follows issue order everywhere). Sharded: a per-site counter
  /// with the site in the high bits; ids from one site keep issue order,
  /// ids from different sites are arbitrary — fine for workloads whose
  /// lock conflicts are same-site only (parity blocks are never locked,
  /// and the parallel bench drives client == home traffic).
  uint64_t NewOpId(SiteId client);

  void StartRead(SiteId client, uint64_t op);
  void StartReadReconstruction(uint64_t op, PendingRead& pr);
  void StartWrite(SiteId client, uint64_t op);
  void FinishRead(SiteId client, uint64_t op, Status st, Block data);
  void FinishWrite(SiteId client, uint64_t op, Status st);
  void ArmWriteTimer(SiteId client, uint64_t op);
  SimTime WriteDeadline(const PendingWrite& pw) const;

  friend struct Node;
};

}  // namespace radd

#endif  // RADD_CORE_NODE_H_
