// RecoverySweeper — the paper's §3.2 "background demon" as an actual
// background task instead of a stop-the-world call.
//
// RaddGroup::RunRecovery repairs every row of a recovering member in one
// synchronous burst; under load that freezes foreground traffic for the
// whole sweep. The sweeper instead listens to SiteStatusService
// transitions and, whenever a member's site enters kRecovering, repairs a
// bounded number of rows per simulator tick (RaddGroup::RecoverRow),
// yielding between ticks so client reads and writes keep flowing. A load
// probe (e.g. the protocol layer's in-flight op count) shrinks the batch
// to a single row under foreground pressure.
//
// The progress cursor models a persisted recovery log: if the site dies
// mid-sweep and restarts, the sweep *resumes* at the cursor rather than
// restarting — safe because (a) draining a spare is idempotent
// (invalidated spares are skipped) and (b) before marking the site up the
// sweeper runs a verification scan (RaddGroup::FirstUnrecoveredRow) that
// catches rows re-dirtied behind the cursor during a second outage —
// spares written while the site was down again, or blocks lost to a
// disaster — and rewinds to the first dirty row. MarkUp happens in the
// same simulator event as a clean verification scan, so no spare commit
// can interleave between "verified clean" and "up".

#ifndef RADD_CORE_SWEEPER_H_
#define RADD_CORE_SWEEPER_H_

#include <functional>
#include <map>

#include "cluster/status_service.h"
#include "core/radd.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace radd {

/// Pacing knobs of the background sweep.
struct SweeperConfig {
  /// Gap between sweep batches. Foreground I/O runs in these gaps.
  SimTime tick_interval = Millis(40);
  /// Rows repaired per tick when the system is otherwise idle.
  int rows_per_tick = 4;
  /// Foreground in-flight operations above which a tick repairs a single
  /// row instead of a full batch (backpressure).
  uint64_t backpressure_threshold = 8;
  /// Reports current foreground load (e.g. RaddNodeSystem::InFlightOps).
  /// Unset = no backpressure.
  std::function<uint64_t()> load_probe;
};

/// One sweeper instance serves every member of one group.
class RecoverySweeper {
 public:
  RecoverySweeper(Simulator* sim, RaddGroup* group,
                  SiteStatusService* service,
                  const SweeperConfig& config = {});

  /// Registers the status listener and picks up members whose sites are
  /// already recovering. Idempotent.
  void Start();

  /// Progress cursor of `member`'s sweep (rows [0, cursor) repaired this
  /// pass). Retained across crash-mid-sweep for resume.
  BlockNum cursor(int member) const;

  /// True while a sweep for `member` has ticks scheduled.
  bool active(int member) const;

  /// Counters: "sweeper.ticks", "sweeper.rows_swept", "sweeper.resumes",
  /// "sweeper.completed", "sweeper.rescans", "sweeper.row_errors",
  /// "sweeper.backpressure_ticks"; distribution "sweeper.tick_ops"
  /// (physical ops per tick — the per-tick I/O bound).
  const Stats& stats() const { return stats_; }

 private:
  struct Sweep {
    BlockNum cursor = 0;
    bool active = false;
  };

  /// Ensures a tick chain is running for `member`.
  void Pump(int member);
  void Tick(int member);

  Simulator* sim_;
  RaddGroup* group_;
  SiteStatusService* service_;
  SweeperConfig config_;
  std::map<int, Sweep> sweeps_;
  Stats stats_;
  bool started_ = false;
};

}  // namespace radd

#endif  // RADD_CORE_SWEEPER_H_
