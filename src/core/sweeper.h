// RecoverySweeper — the paper's §3.2 "background demon" as an actual
// background task instead of a stop-the-world call.
//
// RaddGroup::RunRecovery repairs every row of a recovering member in one
// synchronous burst; under load that freezes foreground traffic for the
// whole sweep. The sweeper instead listens to SiteStatusService
// transitions and, whenever a member's site enters kRecovering, repairs a
// bounded number of rows per simulator tick (RaddGroup::RecoverRow),
// yielding between ticks so client reads and writes keep flowing. A load
// probe (e.g. the protocol layer's in-flight op count) shrinks the batch
// to a single row under foreground pressure.
//
// The progress cursor models a persisted recovery log: if the site dies
// mid-sweep and restarts, the sweep *resumes* at the cursor rather than
// restarting — safe because (a) draining a spare is idempotent
// (invalidated spares are skipped) and (b) before marking the site up the
// sweeper runs a verification scan (RaddGroup::FirstUnrecoveredRow) that
// catches rows re-dirtied behind the cursor during a second outage —
// spares written while the site was down again, or blocks lost to a
// disaster — and rewinds to the first dirty row. MarkUp happens in the
// same simulator event as a clean verification scan, so no spare commit
// can interleave between "verified clean" and "up".

#ifndef RADD_CORE_SWEEPER_H_
#define RADD_CORE_SWEEPER_H_

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "cluster/status_service.h"
#include "core/radd.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace radd {

/// Pacing knobs of the background sweep.
struct SweeperConfig {
  /// Gap between sweep batches. Foreground I/O runs in these gaps.
  SimTime tick_interval = Millis(40);
  /// Rows repaired per tick when the system is otherwise idle.
  int rows_per_tick = 4;
  /// Foreground in-flight operations above which a tick repairs a single
  /// row instead of a full batch (backpressure).
  uint64_t backpressure_threshold = 8;
  /// Reports current foreground load (e.g. RaddNodeSystem::InFlightOps).
  /// Unset = no backpressure.
  std::function<uint64_t()> load_probe;
  /// Disk pacing (modeled disk subsystem): when set, each tick charges
  /// its repaired rows as recovery-class writes to the recovering site's
  /// disk queues (RaddNodeSystem::ChargeBackgroundIo) and the next tick
  /// fires at the charge's completion instead of after tick_interval —
  /// sweep I/O then competes with foreground traffic in the queues, and
  /// the deadline policy's starvation bound replaces the hand-tuned gap.
  /// Unset = the legacy wall-clock pacing above.
  std::function<void(SiteId site, uint32_t units,
                     std::function<void()> done)>
      disk_charge;
  /// Also charge each repaired row's reconstruction-source reads to the
  /// source sites' disk queues (recovery-class reads), and gate the next
  /// tick on the slowest of them. Off by default: the legacy accounting
  /// charges only the recovering site, and the stock event sequence must
  /// stay bit-identical. The layout bench turns this on so the
  /// rotated-vs-declustered recovery makespan reflects where source
  /// reads actually land — one hot survivor versus the whole cluster.
  bool charge_source_reads = false;
};

/// One sweeper instance serves every member of every group it is given.
/// A multi-group (§4) site failure starts one sweep per affected group;
/// the per-group cursors advance concurrently (interleaved ticks) under
/// the one shared load probe, and the site is marked up only when *every*
/// group hosting one of its drives verifies clean — the last-finishing
/// sweep performs the cross-group verification scan and the MarkUp in a
/// single simulator event.
class RecoverySweeper {
 public:
  RecoverySweeper(Simulator* sim, RaddGroup* group,
                  SiteStatusService* service,
                  const SweeperConfig& config = {});

  /// Multi-group form (e.g. every group of a RaddVolume).
  RecoverySweeper(Simulator* sim, std::vector<RaddGroup*> groups,
                  SiteStatusService* service,
                  const SweeperConfig& config = {});

  /// Registers the status listener and picks up members whose sites are
  /// already recovering. Idempotent.
  void Start();

  /// Drives a live expansion of group `grp` through the same pacing
  /// machinery as recovery sweeps: RaddGroup::BeginExpansion must already
  /// have been called; each tick applies up to rows_per_tick block moves
  /// (RaddGroup::MigrateStep) under the load probe's backpressure, with
  /// disk pacing charged at the new member's site. `on_done` runs in the
  /// simulator event where the last move commits the new epoch. No-op
  /// (on_done runs immediately) when no expansion is pending.
  void StartMigration(int grp, std::function<void()> on_done = nullptr);

  /// Progress cursor of `member`'s sweep in group 0 (rows [0, cursor)
  /// repaired this pass). Retained across crash-mid-sweep for resume.
  BlockNum cursor(int member) const { return cursor(0, member); }
  /// Cursor of group `grp`'s `member`.
  BlockNum cursor(int grp, int member) const;

  /// True while a sweep for group 0's `member` has ticks scheduled.
  bool active(int member) const { return active(0, member); }
  bool active(int grp, int member) const;

  /// Counters: "sweeper.ticks", "sweeper.rows_swept", "sweeper.resumes",
  /// "sweeper.completed", "sweeper.rescans", "sweeper.row_errors",
  /// "sweeper.backpressure_ticks", "sweeper.disk_paced_ticks";
  /// distribution "sweeper.tick_ops"
  /// (physical ops per tick — the per-tick I/O bound).
  const Stats& stats() const { return stats_; }

 private:
  struct Sweep {
    BlockNum cursor = 0;
    bool active = false;
  };

  /// Ensures a tick chain is running for group `grp`'s `member`.
  void Pump(int grp, int member);
  void Tick(int grp, int member);
  void MigrateTick(int grp);
  /// True when every group hosting a drive of `site` verifies clean; marks
  /// the site up in the same event. Called by a sweep whose own group just
  /// verified clean.
  bool TryMarkUp(SiteId site);

  Simulator* sim_;
  std::vector<RaddGroup*> groups_;
  SiteStatusService* service_;
  SweeperConfig config_;
  std::map<std::pair<int, int>, Sweep> sweeps_;  // (group, member)
  std::map<int, std::function<void()>> migrations_;  // group -> on_done
  Stats stats_;
  bool started_ = false;
};

}  // namespace radd

#endif  // RADD_CORE_SWEEPER_H_
