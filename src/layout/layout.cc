#include "layout/layout.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace radd {

std::string_view BlockRoleName(BlockRole role) {
  switch (role) {
    case BlockRole::kData:
      return "data";
    case BlockRole::kParity:
      return "parity";
    case BlockRole::kParityQ:
      return "q-parity";
    case BlockRole::kSpare:
      return "spare";
    case BlockRole::kNone:
      return "none";
  }
  return "?";
}

RaddLayout::RaddLayout(int group_size, int parities)
    : g_(group_size), parities_(parities) {
  assert(group_size >= 1);
  assert(parities >= 1 && parities <= 2);
}

BlockRole RaddLayout::RoleOf(SiteId site, BlockNum row) const {
  const BlockNum n = static_cast<BlockNum>(num_sites());
  // i = (K - J - 1) mod n, computed without underflow.
  BlockNum i = (row % n + n + n - static_cast<BlockNum>(site) - 1) % n;
  if (i < static_cast<BlockNum>(g_)) return BlockRole::kData;
  if (i == static_cast<BlockNum>(g_)) return BlockRole::kSpare;
  if (i == n - 1) return BlockRole::kParity;
  return BlockRole::kParityQ;
}

namespace {
/// The non-data rows of site J's column within one n-row cycle: its
/// parity row (r = J), its Q row ((J-1) mod n, dual parity only) and its
/// spare row ((J - parities) mod n) — a contiguous run of parities+1
/// rows ending at J, returned in ascending order.
void SkipRows(SiteId site, BlockNum n, int parities, BlockNum* skips,
              int* num_skips) {
  *num_skips = parities + 1;
  for (int k = 0; k <= parities; ++k) {
    skips[k] =
        (static_cast<BlockNum>(site) + n - static_cast<BlockNum>(k)) % n;
  }
  std::sort(skips, skips + *num_skips);
}
}  // namespace

BlockNum RaddLayout::DataToRow(SiteId site, BlockNum data_index) const {
  // Within each n-row cycle, site J's column skips its parity/Q/spare
  // rows; the remaining rows carry data blocks numbered densely top to
  // bottom (Fig. 1's 0,1,2,... down each column). Inserting past the
  // ascending skip list turns data index i into its row offset.
  const BlockNum n = static_cast<BlockNum>(num_sites());
  const BlockNum g = static_cast<BlockNum>(g_);
  BlockNum cycle = data_index / g;
  BlockNum i = data_index % g;
  BlockNum skips[3];
  int num_skips = 0;
  SkipRows(site, n, parities_, skips, &num_skips);
  BlockNum r = i;
  for (int k = 0; k < num_skips; ++k) {
    if (r >= skips[k]) ++r;
  }
  return n * cycle + r;
}

Result<BlockNum> RaddLayout::RowToData(SiteId site, BlockNum row) const {
  const BlockNum n = static_cast<BlockNum>(num_sites());
  const BlockNum g = static_cast<BlockNum>(g_);
  BlockNum r = row % n;
  BlockNum skips[3];
  int num_skips = 0;
  SkipRows(site, n, parities_, skips, &num_skips);
  BlockNum i = r;
  for (int k = 0; k < num_skips; ++k) {
    if (r == skips[k]) {
      return Status::InvalidArgument(
          "row " + std::to_string(row) + " is the " +
          std::string(BlockRoleName(RoleOf(site, row))) + " block at site " +
          std::to_string(site));
    }
    if (r > skips[k]) --i;
  }
  return (row / n) * g + i;
}

std::vector<SiteId> RaddLayout::DataSites(BlockNum row) const {
  std::vector<SiteId> out;
  out.reserve(static_cast<size_t>(g_));
  for (int j = 0; j < num_sites(); ++j) {
    SiteId s = static_cast<SiteId>(j);
    if (RoleOf(s, row) == BlockRole::kData) out.push_back(s);
  }
  return out;
}

std::vector<SiteId> RaddLayout::ReconstructionSources(SiteId failed_site,
                                                      BlockNum row) const {
  // Formula (2): failed block = XOR{other blocks in the group}. The group
  // for parity purposes is the G data blocks plus the parity block; the
  // spare site holds no parity-covered content.
  std::vector<SiteId> out;
  out.reserve(static_cast<size_t>(g_));
  SiteId spare = SpareSite(row);
  for (int j = 0; j < num_sites(); ++j) {
    SiteId s = static_cast<SiteId>(j);
    if (s == failed_site || s == spare) continue;
    out.push_back(s);
  }
  return out;
}

Result<std::vector<DriveGroup>> GroupAssigner::Assign(
    const std::vector<int>& drives_per_site) const {
  const int members = width_;
  long total = 0;
  int max_drives = 0;
  size_t max_site = 0;
  int sites_with_drives = 0;
  for (size_t j = 0; j < drives_per_site.size(); ++j) {
    int n = drives_per_site[j];
    if (n < 0) {
      return Status::InvalidArgument(
          "site " + std::to_string(j) + " has a negative drive count (" +
          std::to_string(n) + ")");
    }
    total += n;
    if (n > 0) ++sites_with_drives;
    if (n > max_drives) {
      max_drives = n;
      max_site = j;
    }
  }
  if (total == 0) {
    return Status::InvalidArgument(
        "no drives: all " + std::to_string(drives_per_site.size()) +
        " sites report zero drives");
  }
  if (total % members != 0) {
    return Status::InvalidArgument(
        "total drives " + std::to_string(total) + " across " +
        std::to_string(sites_with_drives) +
        " sites is not a multiple of the group width " +
        std::to_string(members));
  }
  const long a = total / members;  // the paper's constant A
  if (max_drives > a) {
    return Status::InvalidArgument(
        "site " + std::to_string(max_site) + " owns " +
        std::to_string(max_drives) + " of the " + std::to_string(total) +
        " drives, more than A = total/width = " + std::to_string(a) +
        " (width " + std::to_string(members) + ")");
  }
  if (sites_with_drives < members) {
    return Status::InvalidArgument(
        "only " + std::to_string(sites_with_drives) +
        " sites own drives; a group needs " + std::to_string(members) +
        " distinct sites");
  }

  // Remaining drive count per site; drives are handed out densely from
  // index 0, so site j's next drive is (initial - remaining).
  std::vector<int> remaining = drives_per_site;
  std::vector<DriveGroup> groups;
  groups.reserve(static_cast<size_t>(a));

  for (long round = 0; round < a; ++round) {
    // Pick the G+2 sites with the largest number of remaining drives,
    // breaking ties by site id (the paper allows arbitrary tie-breaks).
    std::vector<size_t> order(remaining.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&remaining](size_t x, size_t y) {
                       return remaining[x] > remaining[y];
                     });
    if (order.size() < static_cast<size_t>(members) ||
        remaining[order[static_cast<size_t>(members) - 1]] <= 0) {
      int still_own = 0;
      for (int r : remaining) {
        if (r > 0) ++still_own;
      }
      return Status::InvalidArgument(
          "only " + std::to_string(still_own) + " of " +
          std::to_string(remaining.size()) +
          " sites still own drives in round " + std::to_string(round) +
          " of " + std::to_string(a) + "; a group needs " +
          std::to_string(members));
    }
    DriveGroup group;
    for (int m = 0; m < members; ++m) {
      size_t site = order[static_cast<size_t>(m)];
      int drive_index = drives_per_site[site] - remaining[site];
      --remaining[site];
      LogicalDrive d;
      d.site = static_cast<SiteId>(site);
      d.first_block = static_cast<BlockNum>(drive_index);  // drive index;
      // callers slice actual block ranges via AssignBlocks.
      d.drive_blocks = 0;
      group.members.push_back(d);
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

Result<std::vector<DriveGroup>> GroupAssigner::AssignBlocks(
    const std::vector<BlockNum>& blocks_per_site,
    BlockNum drive_blocks) const {
  if (drive_blocks == 0) {
    return Status::InvalidArgument("logical drive size must be > 0");
  }
  std::vector<int> drives(blocks_per_site.size());
  for (size_t j = 0; j < blocks_per_site.size(); ++j) {
    if (blocks_per_site[j] % drive_blocks != 0) {
      return Status::InvalidArgument(
          "site " + std::to_string(j) + " capacity " +
          std::to_string(blocks_per_site[j]) +
          " is not a multiple of the logical drive size " +
          std::to_string(drive_blocks));
    }
    drives[j] = static_cast<int>(blocks_per_site[j] / drive_blocks);
  }
  RADD_ASSIGN_OR_RETURN(std::vector<DriveGroup> groups, Assign(drives));
  for (DriveGroup& g : groups) {
    for (LogicalDrive& d : g.members) {
      d.first_block *= drive_blocks;  // drive index -> block offset
      d.drive_blocks = drive_blocks;
    }
  }
  return groups;
}

}  // namespace radd
