// Pluggable placement: the map from (member, row) to block roles and
// physical addresses, behind a virtual interface so the rotated closed
// forms (layout.h, paper §3.2/Fig. 1), a declustered t-design table and
// an epoch-versioned expandable remap are interchangeable.
//
// Vocabulary. A *group* has `num_sites()` members (the map's "sites", as
// in layout.h: member indices, not cluster site ids). A *row* is one
// parity stripe: G data blocks, one spare, and `parities` parity blocks,
// each on a distinct member. Under the rotated layout every member
// appears in every row and member m's block for row r sits at physical
// address r, so rows == physical addresses. Table-driven maps decouple
// the two:
//   * NumRows(rows)       — logical rows exposed given `rows` physical
//                           blocks per member (rotated: rows; declustered
//                           with cluster width C > n: (rows/n)*C — more
//                           rows, each touching only n of C members).
//   * AddressOf(m, row)   — the physical block offset within member m's
//                           drive holding its block of `row`; meaningful
//                           only when RoleOf(m, row) != kNone.
//   * HostOfData(m, row)  — the member *hosting* owner m's data block of
//                           `row`. Ownership (the LBA space: DataToRow /
//                           RowToData) is fixed for the life of a volume;
//                           hosting changes when an expansion migrates
//                           blocks. Everywhere except mid-expansion the
//                           host is the owner.
//
// Declustered construction (parity declustering via t-design-style
// balanced tables). Rows are built in *rounds* of C stripes from k
// seeded permutation templates. Round q uses template t = q mod k, a
// permutation pi of the C members; stripe s of the round places member
// pi[(s + j) mod C] at stripe offset j for j = 0..n-1. Offsets carry the
// roles in layout.h order (j < G data, j == G spare, j == G+1 Q when
// dual, j == n-1 parity). Within one round every member plays every
// offset exactly once, so data/parity/spare load is exactly balanced;
// across rounds the templates differ, so a member's reconstruction
// sources — its co-participants — spread over the whole cluster instead
// of hammering a fixed set of G+P peers (the §3.2 bottleneck).
//
// Epoched expansion (LayoutEpoch). Adding member X to a C-member group
// creates one new stripe per round and moves exactly n-1 existing blocks
// per round onto X's drive: per round, X keeps one slot of the new
// stripe (offset j_X = q mod n) and takes over n-1 slots of existing
// stripes from n-1 distinct donor members; each donor's freed physical
// address becomes its slot in the new stripe (content: never-written
// zeros, like any fresh volume). Moved fraction = (n-1)/(C*n) of
// physical blocks per round, <= 1/(C+1) — the added capacity share —
// versus ~100 % for a reshuffle. The epoch number versions the tables:
// queries answer for the current epoch, and per-move table flips keep the
// map consistent with physical reality at every intermediate step (a
// block is re-addressed only after its bytes moved).

#ifndef RADD_LAYOUT_PLACEMENT_H_
#define RADD_LAYOUT_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/block.h"
#include "common/status.h"
#include "common/uid.h"
#include "layout/layout.h"

namespace radd {

enum class PlacementKind { kRotated, kDeclustered };

std::string_view PlacementKindName(PlacementKind kind);

/// How a group's placement map is built. Carried inside RaddConfig.
struct PlacementSpec {
  PlacementKind kind = PlacementKind::kRotated;
  /// Declustered only: cluster width C — the number of members the
  /// group's rows spread over. 0 means the minimum, G + 1 + parities.
  int sites = 0;
  /// Declustered only: seed for the permutation templates.
  uint64_t seed = 0x9a1a7 /* "palat" */;
  /// Declustered only: distinct permutation templates, reused
  /// round-robin over rounds. More templates -> wider reconstruction
  /// spread.
  int templates = 4;
};

/// Group width (member count) implied by a spec.
int PlacementGroupWidth(const PlacementSpec& spec, int group_size,
                        int parities);

/// The placement interface. Query names and semantics match RaddLayout
/// (layout.h) so call sites read identically; see the file comment for
/// the table-layout extensions.
class PlacementMap {
 public:
  virtual ~PlacementMap() = default;

  virtual PlacementKind kind() const = 0;
  virtual int group_size() const = 0;
  virtual int parities() const = 0;
  bool dual_parity() const { return parities() == 2; }
  /// Stripe width n = G + 1 + parities (blocks per row).
  int stripe_width() const { return group_size() + 1 + parities(); }
  /// Members in the group (the map's site-id space).
  virtual int num_sites() const = 0;

  virtual SiteId ParitySite(BlockNum row) const = 0;
  virtual SiteId QParitySite(BlockNum row) const = 0;
  virtual SiteId SpareSite(BlockNum row) const = 0;
  virtual BlockRole RoleOf(SiteId member, BlockNum row) const = 0;
  virtual BlockNum DataToRow(SiteId member, BlockNum data_index) const = 0;
  virtual Result<BlockNum> RowToData(SiteId member, BlockNum row) const = 0;
  virtual std::vector<SiteId> DataSites(BlockNum row) const = 0;
  virtual std::vector<SiteId> ReconstructionSources(SiteId failed_site,
                                                    BlockNum row) const = 0;

  /// Data blocks each member exposes given `rows` physical blocks per
  /// member. Identical for every placement: only whole n-row cycles are
  /// used, a trailing partial cycle is left unused (documented capacity
  /// rounding — see CapacityWasteBlocks).
  BlockNum DataBlocksPerSite(BlockNum rows) const {
    BlockNum cycle = static_cast<BlockNum>(stripe_width());
    return (rows / cycle) * static_cast<BlockNum>(group_size());
  }
  /// Rows needed to expose `data_blocks` data blocks per member.
  BlockNum RowsForDataBlocks(BlockNum data_blocks) const {
    BlockNum g = static_cast<BlockNum>(group_size());
    BlockNum cycles = (data_blocks + g - 1) / g;
    return cycles * static_cast<BlockNum>(stripe_width());
  }
  /// Physical blocks per member lost to the trailing partial cycle.
  BlockNum CapacityWasteBlocks(BlockNum rows) const {
    return rows % static_cast<BlockNum>(stripe_width());
  }

  // --- table-layout extensions -----------------------------------------
  /// Logical rows exposed given `rows` physical blocks per member.
  virtual BlockNum NumRows(BlockNum rows) const = 0;
  /// Physical block offset within member's drive for its block of `row`.
  /// Only meaningful when RoleOf(member, row) != kNone.
  virtual BlockNum AddressOf(SiteId member, BlockNum row) const = 0;
  /// Member hosting owner `member`'s data block of `row` (== member
  /// except for blocks migrated by an expansion). Ambiguous for a member
  /// added by an expansion — all of its per-round data blocks share one
  /// row (the round's new stripe) — so data-path host resolution must go
  /// through HostOfDataIndex instead.
  virtual SiteId HostOfData(SiteId member, BlockNum row) const {
    (void)row;
    return member;
  }
  /// Member hosting owner `member`'s data block `data_index`. Unlike
  /// HostOfData this is well defined for every owner: the index carries
  /// the stripe offset that (owner, row) loses when an expansion owner
  /// holds several blocks of one row.
  virtual SiteId HostOfDataIndex(SiteId member, BlockNum data_index) const {
    return HostOfData(member, DataToRow(member, data_index));
  }
};

/// (a) The legacy rotated layout — every query delegates to the
/// RaddLayout closed forms, bit-identical to the pre-refactor behavior
/// (asserted exhaustively in tests/placement_test.cc).
class RotatedLayout : public PlacementMap {
 public:
  RotatedLayout(int group_size, int parities)
      : layout_(group_size, parities) {}

  PlacementKind kind() const override { return PlacementKind::kRotated; }
  int group_size() const override { return layout_.group_size(); }
  int parities() const override { return layout_.parities(); }
  int num_sites() const override { return layout_.num_sites(); }

  SiteId ParitySite(BlockNum row) const override {
    return layout_.ParitySite(row);
  }
  SiteId QParitySite(BlockNum row) const override {
    return layout_.QParitySite(row);
  }
  SiteId SpareSite(BlockNum row) const override {
    return layout_.SpareSite(row);
  }
  BlockRole RoleOf(SiteId member, BlockNum row) const override {
    return layout_.RoleOf(member, row);
  }
  BlockNum DataToRow(SiteId member, BlockNum data_index) const override {
    return layout_.DataToRow(member, data_index);
  }
  Result<BlockNum> RowToData(SiteId member, BlockNum row) const override {
    return layout_.RowToData(member, row);
  }
  std::vector<SiteId> DataSites(BlockNum row) const override {
    return layout_.DataSites(row);
  }
  std::vector<SiteId> ReconstructionSources(SiteId failed_site,
                                            BlockNum row) const override {
    return layout_.ReconstructionSources(failed_site, row);
  }
  BlockNum NumRows(BlockNum rows) const override { return rows; }
  BlockNum AddressOf(SiteId member, BlockNum row) const override {
    (void)member;
    return row;
  }

 private:
  RaddLayout layout_;
};

/// (b) Declustered placement: per-round permutation tables (see the file
/// comment). Queries are table lookups; tables are mutable only through
/// the EpochedPlacement subclass.
class DeclusteredLayout : public PlacementMap {
 public:
  /// `sites` is the cluster width C >= G + 1 + parities; `rows` the
  /// physical blocks per member (only whole n-row cycles are used).
  DeclusteredLayout(int group_size, int parities, int sites, BlockNum rows,
                    uint64_t seed, int templates);

  PlacementKind kind() const override { return PlacementKind::kDeclustered; }
  int group_size() const override { return g_; }
  int parities() const override { return parities_; }
  int num_sites() const override { return width_; }

  SiteId ParitySite(BlockNum row) const override;
  SiteId QParitySite(BlockNum row) const override;
  SiteId SpareSite(BlockNum row) const override;
  BlockRole RoleOf(SiteId member, BlockNum row) const override;
  BlockNum DataToRow(SiteId member, BlockNum data_index) const override;
  Result<BlockNum> RowToData(SiteId member, BlockNum row) const override;
  std::vector<SiteId> DataSites(BlockNum row) const override;
  std::vector<SiteId> ReconstructionSources(SiteId failed_site,
                                            BlockNum row) const override;
  BlockNum NumRows(BlockNum rows) const override;
  BlockNum AddressOf(SiteId member, BlockNum row) const override;
  SiteId HostOfData(SiteId member, BlockNum row) const override;
  SiteId HostOfDataIndex(SiteId member, BlockNum data_index) const override;

  /// Rounds of stripes (rows/n whole cycles).
  BlockNum rounds() const { return rounds_; }
  /// Stripes per round (base width + committed expansions).
  int stripes_per_round() const { return base_width_ + committed_; }

 protected:
  /// One block slot: a (stripe, offset) coordinate within a round.
  struct Slot {
    int stripe = -1;
    int offset = -1;
  };
  /// Placement tables for one round of stripes. `members[s][j]` is the
  /// member at offset j of stripe s; `addr[m][a]` the slot whose block
  /// sits at member m's physical address q*n + a (sentinel stripe -1 =
  /// unused); `bind[m][k]` the slot *owned* as m's k-th data block of the
  /// round (fixed at creation — ownership never moves, only hosting).
  struct Round {
    std::vector<std::vector<int>> members;
    std::vector<std::vector<Slot>> addr;
    std::vector<std::vector<Slot>> bind;
  };

  /// Decodes a row id into (round, stripe); false when out of range for
  /// the committed width.
  bool DecodeRow(BlockNum row, BlockNum* round, int* stripe) const;
  /// Row id of stripe `s` in round `q` (stable across expansions: base
  /// stripes first, then one block of `rounds_` rows per expansion).
  BlockNum RowOf(BlockNum round, int stripe) const;
  /// Offset of `member` in stripe `s` of round `q`, or -1.
  int OffsetIn(BlockNum round, int stripe, SiteId member) const;
  BlockRole RoleAtOffset(int offset) const;

  int g_;
  int parities_;
  int base_width_;  // C at construction
  int width_;       // current member count (grows with expansions)
  int committed_;   // committed expansions (extra stripes per round)
  BlockNum rows_;   // physical blocks per member, as configured
  BlockNum rounds_;
  std::vector<Round> rounds_tab_;
};

/// Epoch metadata for the expandable map: even epochs are stable, odd
/// epochs have a migration in flight.
struct LayoutEpoch {
  uint32_t epoch = 0;
  int members = 0;
  BlockNum num_rows = 0;
  bool migrating = false;
};

/// One physical block relocation of an expansion plan: the new member
/// takes over `offset` of `row` from `donor`. Addresses are drive-local
/// block offsets (add the member's first_block for the absolute address).
struct PlacementMove {
  BlockNum row = 0;
  int offset = 0;
  int donor = 0;
  BlockNum donor_addr = 0;
  BlockNum new_addr = 0;
};

/// (c) The epoch-versioned expandable map. BeginAddMember() plans the
/// minimal move set for one new member; the caller (RaddGroup, paced by
/// the RecoverySweeper) migrates the bytes and calls ApplyMove() per
/// relocated block, then CommitAddMember() to expose the new rows.
class EpochedPlacement : public DeclusteredLayout {
 public:
  using DeclusteredLayout::DeclusteredLayout;

  LayoutEpoch CurrentEpoch() const {
    LayoutEpoch e;
    e.epoch = epoch_;
    e.members = width_;
    e.num_rows = NumRows(rows_);
    e.migrating = pending_;
    return e;
  }
  bool migrating() const { return pending_; }
  /// The member index being added, or -1.
  int pending_member() const { return pending_ ? width_ - 1 : -1; }

  /// Plans the addition of one member (index = num_sites() before the
  /// call). On success num_sites() grows by one (the new member is
  /// addressable immediately) but NumRows() and all role queries answer
  /// for the old epoch until moves are applied and committed. Exactly
  /// rounds() * (n-1) moves are returned — the minimal set: the added
  /// capacity share of physical blocks, bounded by total/(C+1).
  Result<std::vector<PlacementMove>> BeginAddMember();

  /// Flips the tables for one migrated block. Call only after the bytes
  /// physically moved (donor's block copied to the new member and the
  /// donor's freed address zeroed). Idempotence is the caller's job:
  /// apply each move exactly once.
  void ApplyMove(const PlacementMove& move);

  /// All moves applied: bumps the epoch and exposes the new stripe's
  /// rows (one per round) through NumRows()/role queries.
  Status CommitAddMember();

 private:
  uint32_t epoch_ = 0;
  bool pending_ = false;
  BlockNum moves_applied_ = 0;
  BlockNum moves_planned_ = 0;
};

/// Builds the map for a group: `spec.kind` selects the implementation;
/// declustered maps are always EpochedPlacement so a live group can
/// expand. Aborts on malformed specs (sites < width, templates < 1).
std::shared_ptr<PlacementMap> MakePlacement(const PlacementSpec& spec,
                                            int group_size, int parities,
                                            BlockNum rows);

}  // namespace radd

#endif  // RADD_LAYOUT_PLACEMENT_H_
