// The RADD block layout (paper Fig. 1) and the heterogeneous-site grouping
// algorithm (paper §4).
//
// A RADD group has G + 1 + P sites, where P is the number of rotating
// parity roles (1 in the paper; 2 for the P+Q double-failure scheme).
// Physical blocks at the same address K on every site form a *row*. In
// row K of an n = G+1+P site group:
//   * site  K      mod n holds the row's parity block (P),
//   * site (K + 1) mod n holds the row's Q parity when P == 2,
//   * site (K + P) mod n holds the row's spare block (S),
//   * the remaining G sites hold data blocks.
// With P == 1 this is exactly the paper's Fig. 1 (n = G+2, spare at
// K+1); each site numbers its own data blocks 0, 1, 2, ... down its
// column either way.
//
// Closed forms (generalizing the paper's S[1] example):
//   role(J, K) : let i = (K - J - 1) mod n;
//                i < G    -> data block I = (K div n) * G + i
//                i == G   -> spare
//                i == G+1 -> Q parity   (P == 2 only)
//                i == n-1 -> parity

#ifndef RADD_LAYOUT_LAYOUT_H_
#define RADD_LAYOUT_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/block.h"
#include "common/status.h"
#include "common/uid.h"

namespace radd {

/// What a given physical block is used for at a given site. kNone means
/// the site does not participate in the row at all — impossible under the
/// rotated layout (every member appears in every row) but routine under
/// declustered placement, where each row touches only n of the C cluster
/// members (layout/placement.h).
enum class BlockRole { kData, kParity, kParityQ, kSpare, kNone };

std::string_view BlockRoleName(BlockRole role);

/// Layout math for one RADD group of `group_size` + 1 + `parities` sites.
class RaddLayout {
 public:
  /// `group_size` is the paper's G (>= 1); `parities` is 1 for the
  /// paper's single rotating parity, 2 for the P+Q scheme.
  explicit RaddLayout(int group_size, int parities = 1);

  int group_size() const { return g_; }
  int parities() const { return parities_; }
  bool dual_parity() const { return parities_ == 2; }
  /// Number of sites in the group: G + 1 + parities.
  int num_sites() const { return g_ + 1 + parities_; }

  /// Site holding the parity block of row `row` (A = K mod n).
  SiteId ParitySite(BlockNum row) const {
    return static_cast<SiteId>(row % static_cast<BlockNum>(num_sites()));
  }

  /// Site holding the Q parity block of row `row` ((K+1) mod n). Only
  /// meaningful when dual_parity().
  SiteId QParitySite(BlockNum row) const {
    return static_cast<SiteId>((row + 1) %
                               static_cast<BlockNum>(num_sites()));
  }

  /// Site holding the spare block of row `row` ((K + parities) mod n;
  /// the paper's A' = (K+1) mod (G+2) when parities == 1).
  SiteId SpareSite(BlockNum row) const {
    return static_cast<SiteId>(
        (row + static_cast<BlockNum>(parities_)) %
        static_cast<BlockNum>(num_sites()));
  }

  /// Role of physical block `row` at `site`.
  BlockRole RoleOf(SiteId site, BlockNum row) const;

  /// Physical row holding data block `data_index` of `site` (the paper's
  /// K; generalizes the S[1] formula in §3.2).
  BlockNum DataToRow(SiteId site, BlockNum data_index) const;

  /// Inverse of DataToRow. Fails with InvalidArgument if `row` holds this
  /// site's parity or spare block.
  Result<BlockNum> RowToData(SiteId site, BlockNum row) const;

  /// The G sites holding data in `row`, in site order.
  std::vector<SiteId> DataSites(BlockNum row) const;

  /// All sites except `site` in `row`'s group — the blocks combined by
  /// formula (2) (or its two-erasure GF(256) generalization) when
  /// `site`'s copy must be reconstructed. The spare site's block is
  /// excluded (it holds no parity-covered content); in dual-parity mode
  /// the Q site is included and decoders weight it by role.
  std::vector<SiteId> ReconstructionSources(SiteId failed_site,
                                            BlockNum row) const;

  /// Number of data blocks each site exposes given `rows` physical blocks
  /// per site. Only whole (G+2)-row cycles are used; a trailing partial
  /// cycle is left unused (documented capacity rounding).
  BlockNum DataBlocksPerSite(BlockNum rows) const {
    BlockNum cycle = static_cast<BlockNum>(num_sites());
    return (rows / cycle) * static_cast<BlockNum>(g_);
  }

  /// Rows needed to expose `data_blocks` data blocks per site.
  BlockNum RowsForDataBlocks(BlockNum data_blocks) const {
    BlockNum g = static_cast<BlockNum>(g_);
    BlockNum cycles = (data_blocks + g - 1) / g;
    return cycles * static_cast<BlockNum>(num_sites());
  }

 private:
  int g_;
  int parities_;
};

/// One logical drive: `drive_blocks` blocks carved out of a site's disk
/// system starting at `first_block` (paper §4's logical drives of size B).
struct LogicalDrive {
  SiteId site = 0;
  BlockNum first_block = 0;
  BlockNum drive_blocks = 0;
};

/// One RADD group produced by the §4 assignment: exactly G + 2 logical
/// drives, all on distinct sites.
struct DriveGroup {
  std::vector<LogicalDrive> members;
};

/// The §4 greedy grouping algorithm.
///
/// Given L sites with N[0..L-1] logical drives, where the total is
/// A * (G+2) and no site has more than A drives, packs the drives into A
/// groups of G+2 with all members on distinct sites: repeatedly take one
/// drive from each of the G+2 sites with the most remaining drives.
class GroupAssigner {
 public:
  /// `width` overrides the members-per-group count (declustered groups
  /// span more sites than the rotated G + 1 + parities); 0 = rotated
  /// width.
  explicit GroupAssigner(int group_size, int parities = 1, int width = 0)
      : g_(group_size),
        parities_(parities),
        width_(width > 0 ? width : group_size + 1 + parities) {}

  /// Assigns `drives_per_site[j]` drives of site j into groups. Fails with
  /// InvalidArgument when the paper's preconditions are violated (total
  /// not a multiple of G+2, or some site owning more than A drives, or
  /// fewer than G+2 sites with drives).
  Result<std::vector<DriveGroup>> Assign(
      const std::vector<int>& drives_per_site) const;

  /// §4 extension to non-uniform disk *sizes*: slices each site's
  /// `blocks_per_site[j]` blocks into logical drives of exactly
  /// `drive_blocks` blocks (must divide each site's total), then assigns.
  Result<std::vector<DriveGroup>> AssignBlocks(
      const std::vector<BlockNum>& blocks_per_site,
      BlockNum drive_blocks) const;

 private:
  int g_;
  int parities_;
  int width_;
};

}  // namespace radd

#endif  // RADD_LAYOUT_LAYOUT_H_
