#include "layout/placement.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace radd {

std::string_view PlacementKindName(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kRotated:
      return "rotated";
    case PlacementKind::kDeclustered:
      return "declustered";
  }
  return "?";
}

int PlacementGroupWidth(const PlacementSpec& spec, int group_size,
                        int parities) {
  const int n = group_size + 1 + parities;
  if (spec.kind == PlacementKind::kRotated) return n;
  return spec.sites > 0 ? spec.sites : n;
}

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seeded Fisher-Yates permutation of 0..width-1 for template `t`.
std::vector<int> TemplatePermutation(uint64_t seed, int t, int width) {
  std::vector<int> perm(static_cast<size_t>(width));
  for (int i = 0; i < width; ++i) perm[static_cast<size_t>(i)] = i;
  uint64_t state = seed ^ (static_cast<uint64_t>(t) + 1) *
                              0xd1342543de82ef95ULL;
  for (int i = width - 1; i > 0; --i) {
    uint64_t j = SplitMix64(&state) % static_cast<uint64_t>(i + 1);
    std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
  }
  return perm;
}

}  // namespace

DeclusteredLayout::DeclusteredLayout(int group_size, int parities, int sites,
                                     BlockNum rows, uint64_t seed,
                                     int templates)
    : g_(group_size),
      parities_(parities),
      base_width_(sites),
      width_(sites),
      committed_(0),
      rows_(rows) {
  assert(group_size >= 1);
  assert(parities >= 1 && parities <= 2);
  const int n = stripe_width();
  assert(sites >= n);
  assert(templates >= 1);
  rounds_ = rows / static_cast<BlockNum>(n);

  std::vector<std::vector<int>> perms;
  perms.reserve(static_cast<size_t>(templates));
  for (int t = 0; t < templates; ++t) {
    perms.push_back(TemplatePermutation(seed, t, sites));
  }

  rounds_tab_.resize(static_cast<size_t>(rounds_));
  for (BlockNum q = 0; q < rounds_; ++q) {
    const std::vector<int>& perm =
        perms[static_cast<size_t>(q % static_cast<BlockNum>(templates))];
    Round& r = rounds_tab_[static_cast<size_t>(q)];
    r.members.assign(static_cast<size_t>(sites),
                     std::vector<int>(static_cast<size_t>(n), -1));
    r.addr.assign(static_cast<size_t>(sites),
                  std::vector<Slot>(static_cast<size_t>(n)));
    r.bind.assign(static_cast<size_t>(sites),
                  std::vector<Slot>(static_cast<size_t>(g_)));
    // Member perm[pos] sits at offset j of stripe (pos - j) mod C; its
    // offset-j block occupies drive address q*n + j.
    for (int pos = 0; pos < sites; ++pos) {
      const int m = perm[static_cast<size_t>(pos)];
      for (int j = 0; j < n; ++j) {
        const int s = (pos - j + sites) % sites;
        r.members[static_cast<size_t>(s)][static_cast<size_t>(j)] = m;
        r.addr[static_cast<size_t>(m)][static_cast<size_t>(j)] = Slot{s, j};
        if (j < g_) {
          r.bind[static_cast<size_t>(m)][static_cast<size_t>(j)] =
              Slot{s, j};
        }
      }
    }
  }
}

bool DeclusteredLayout::DecodeRow(BlockNum row, BlockNum* round,
                                  int* stripe) const {
  const BlockNum c0 = static_cast<BlockNum>(base_width_);
  const BlockNum n0 = rounds_ * c0;
  if (row < n0) {
    *round = row / c0;
    *stripe = static_cast<int>(row % c0);
    return true;
  }
  if (rounds_ == 0) return false;
  const BlockNum i = row - n0;
  const BlockNum e = i / rounds_;
  // Expansion stripes: committed ones plus (while migrating) the pending
  // one, whose rows exist in the tables but are not yet exposed.
  const int extra = committed_ + (width_ > base_width_ + committed_ ? 1 : 0);
  if (e >= static_cast<BlockNum>(extra)) return false;
  *round = i % rounds_;
  *stripe = base_width_ + static_cast<int>(e);
  return true;
}

BlockNum DeclusteredLayout::RowOf(BlockNum round, int stripe) const {
  if (stripe < base_width_) {
    return round * static_cast<BlockNum>(base_width_) +
           static_cast<BlockNum>(stripe);
  }
  const BlockNum e = static_cast<BlockNum>(stripe - base_width_);
  return rounds_ * static_cast<BlockNum>(base_width_) + e * rounds_ + round;
}

int DeclusteredLayout::OffsetIn(BlockNum round, int stripe,
                                SiteId member) const {
  const std::vector<int>& slots =
      rounds_tab_[static_cast<size_t>(round)]
          .members[static_cast<size_t>(stripe)];
  for (size_t j = 0; j < slots.size(); ++j) {
    if (slots[j] == static_cast<int>(member)) return static_cast<int>(j);
  }
  return -1;
}

BlockRole DeclusteredLayout::RoleAtOffset(int offset) const {
  if (offset < 0) return BlockRole::kNone;
  if (offset < g_) return BlockRole::kData;
  if (offset == g_) return BlockRole::kSpare;
  if (offset == stripe_width() - 1) return BlockRole::kParity;
  return BlockRole::kParityQ;
}

SiteId DeclusteredLayout::ParitySite(BlockNum row) const {
  BlockNum q;
  int s;
  bool ok = DecodeRow(row, &q, &s);
  assert(ok);
  if (!ok) return 0;
  return static_cast<SiteId>(
      rounds_tab_[static_cast<size_t>(q)].members[static_cast<size_t>(s)]
                 [static_cast<size_t>(stripe_width() - 1)]);
}

SiteId DeclusteredLayout::QParitySite(BlockNum row) const {
  BlockNum q;
  int s;
  bool ok = DecodeRow(row, &q, &s);
  assert(ok);
  if (!ok) return 0;
  return static_cast<SiteId>(
      rounds_tab_[static_cast<size_t>(q)].members[static_cast<size_t>(s)]
                 [static_cast<size_t>(g_ + 1)]);
}

SiteId DeclusteredLayout::SpareSite(BlockNum row) const {
  BlockNum q;
  int s;
  bool ok = DecodeRow(row, &q, &s);
  assert(ok);
  if (!ok) return 0;
  return static_cast<SiteId>(
      rounds_tab_[static_cast<size_t>(q)].members[static_cast<size_t>(s)]
                 [static_cast<size_t>(g_)]);
}

BlockRole DeclusteredLayout::RoleOf(SiteId member, BlockNum row) const {
  BlockNum q;
  int s;
  if (!DecodeRow(row, &q, &s)) return BlockRole::kNone;
  if (static_cast<int>(member) >= width_) return BlockRole::kNone;
  return RoleAtOffset(OffsetIn(q, s, member));
}

BlockNum DeclusteredLayout::DataToRow(SiteId member,
                                      BlockNum data_index) const {
  const BlockNum g = static_cast<BlockNum>(g_);
  const BlockNum q = data_index / g;
  const int k = static_cast<int>(data_index % g);
  assert(q < rounds_);
  assert(static_cast<int>(member) < width_);
  const Slot& slot = rounds_tab_[static_cast<size_t>(q)]
                         .bind[static_cast<size_t>(member)]
                             [static_cast<size_t>(k)];
  return RowOf(q, slot.stripe);
}

Result<BlockNum> DeclusteredLayout::RowToData(SiteId member,
                                              BlockNum row) const {
  BlockNum q;
  int s;
  if (!DecodeRow(row, &q, &s) || static_cast<int>(member) >= width_) {
    return Status::InvalidArgument("row " + std::to_string(row) +
                                   " has no block at site " +
                                   std::to_string(member));
  }
  const std::vector<Slot>& bind = rounds_tab_[static_cast<size_t>(q)]
                                      .bind[static_cast<size_t>(member)];
  for (size_t k = 0; k < bind.size(); ++k) {
    if (bind[k].stripe == s) {
      return q * static_cast<BlockNum>(g_) + static_cast<BlockNum>(k);
    }
  }
  return Status::InvalidArgument(
      "row " + std::to_string(row) + " is the " +
      std::string(BlockRoleName(RoleAtOffset(OffsetIn(q, s, member)))) +
      " block at site " + std::to_string(member));
}

std::vector<SiteId> DeclusteredLayout::DataSites(BlockNum row) const {
  BlockNum q;
  int s;
  std::vector<SiteId> out;
  if (!DecodeRow(row, &q, &s)) return out;
  const std::vector<int>& slots =
      rounds_tab_[static_cast<size_t>(q)].members[static_cast<size_t>(s)];
  out.reserve(static_cast<size_t>(g_));
  for (int j = 0; j < g_; ++j) {
    out.push_back(static_cast<SiteId>(slots[static_cast<size_t>(j)]));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SiteId> DeclusteredLayout::ReconstructionSources(
    SiteId failed_site, BlockNum row) const {
  BlockNum q;
  int s;
  std::vector<SiteId> out;
  if (!DecodeRow(row, &q, &s)) return out;
  const std::vector<int>& slots =
      rounds_tab_[static_cast<size_t>(q)].members[static_cast<size_t>(s)];
  out.reserve(slots.size());
  for (size_t j = 0; j < slots.size(); ++j) {
    if (static_cast<int>(j) == g_) continue;  // spare: no covered content
    const SiteId m = static_cast<SiteId>(slots[j]);
    if (m == failed_site) continue;
    out.push_back(m);
  }
  std::sort(out.begin(), out.end());
  return out;
}

BlockNum DeclusteredLayout::NumRows(BlockNum rows) const {
  assert(rows == rows_);
  const BlockNum r = rows / static_cast<BlockNum>(stripe_width());
  return r * static_cast<BlockNum>(base_width_) +
         static_cast<BlockNum>(committed_) * r;
}

BlockNum DeclusteredLayout::AddressOf(SiteId member, BlockNum row) const {
  BlockNum q;
  int s;
  bool ok = DecodeRow(row, &q, &s);
  assert(ok);
  if (!ok) return 0;
  const std::vector<Slot>& addr = rounds_tab_[static_cast<size_t>(q)]
                                      .addr[static_cast<size_t>(member)];
  for (size_t a = 0; a < addr.size(); ++a) {
    if (addr[a].stripe == s) {
      return q * static_cast<BlockNum>(stripe_width()) +
             static_cast<BlockNum>(a);
    }
  }
  assert(false && "AddressOf: member does not participate in row");
  return 0;
}

SiteId DeclusteredLayout::HostOfData(SiteId member, BlockNum row) const {
  BlockNum q;
  int s;
  if (!DecodeRow(row, &q, &s)) return member;
  const std::vector<Slot>& bind = rounds_tab_[static_cast<size_t>(q)]
                                      .bind[static_cast<size_t>(member)];
  for (const Slot& slot : bind) {
    if (slot.stripe == s) {
      return static_cast<SiteId>(
          rounds_tab_[static_cast<size_t>(q)].members[static_cast<size_t>(s)]
                     [static_cast<size_t>(slot.offset)]);
    }
  }
  return member;
}

SiteId DeclusteredLayout::HostOfDataIndex(SiteId member,
                                          BlockNum data_index) const {
  const BlockNum g = static_cast<BlockNum>(g_);
  const BlockNum q = data_index / g;
  const int k = static_cast<int>(data_index % g);
  assert(q < rounds_);
  assert(static_cast<int>(member) < width_);
  const Round& r = rounds_tab_[static_cast<size_t>(q)];
  const Slot& slot =
      r.bind[static_cast<size_t>(member)][static_cast<size_t>(k)];
  return static_cast<SiteId>(
      r.members[static_cast<size_t>(slot.stripe)]
               [static_cast<size_t>(slot.offset)]);
}

Result<std::vector<PlacementMove>> EpochedPlacement::BeginAddMember() {
  if (pending_) {
    return Status::InvalidArgument("an expansion is already in flight");
  }
  const int n = stripe_width();
  const int c = stripes_per_round();
  const int x = width_;
  const int s_new = c;

  std::vector<PlacementMove> plan;
  plan.reserve(static_cast<size_t>(rounds_ * (n - 1)));

  for (BlockNum q = 0; q < rounds_; ++q) {
    Round& r = rounds_tab_[static_cast<size_t>(q)];
    const int jx = static_cast<int>(q % static_cast<BlockNum>(n));

    // The n-1 offsets X takes over from donors this round.
    std::vector<int> offsets;
    offsets.reserve(static_cast<size_t>(n - 1));
    for (int j = 0; j < n; ++j) {
      if (j != jx) offsets.push_back(j);
    }
    // Pick a distinct (stripe, donor) pair per offset. Within a round
    // each offset's column holds every member exactly once, so this is a
    // system of distinct representatives; the backtracking is tiny.
    std::vector<int> chosen(offsets.size(), -1);
    std::vector<char> stripe_used(static_cast<size_t>(c), 0);
    std::vector<char> donor_used(static_cast<size_t>(width_), 0);
    std::function<bool(size_t)> pick = [&](size_t k) {
      if (k == offsets.size()) return true;
      const int j = offsets[k];
      for (int step = 0; step < c; ++step) {
        const int s = static_cast<int>(
            (q * 7 + static_cast<BlockNum>(j + step)) %
            static_cast<BlockNum>(c));
        const int donor =
            r.members[static_cast<size_t>(s)][static_cast<size_t>(j)];
        if (stripe_used[static_cast<size_t>(s)] ||
            donor_used[static_cast<size_t>(donor)]) {
          continue;
        }
        stripe_used[static_cast<size_t>(s)] = 1;
        donor_used[static_cast<size_t>(donor)] = 1;
        chosen[k] = s;
        if (pick(k + 1)) return true;
        stripe_used[static_cast<size_t>(s)] = 0;
        donor_used[static_cast<size_t>(donor)] = 0;
        chosen[k] = -1;
      }
      return false;
    };
    if (!pick(0)) {
      return Status::Internal("no expansion move plan for round " +
                              std::to_string(q));
    }

    // Extend the tables for X and the new stripe. Only X's own slot of
    // the new stripe is placed now; each donor joins the new stripe when
    // its move is applied, so the tables track physical reality.
    r.members.push_back(std::vector<int>(static_cast<size_t>(n), -1));
    r.members[static_cast<size_t>(s_new)][static_cast<size_t>(jx)] = x;
    r.addr.push_back(std::vector<Slot>(static_cast<size_t>(n)));
    r.addr[static_cast<size_t>(x)][0] = Slot{s_new, jx};
    std::vector<Slot> bind(static_cast<size_t>(g_));
    for (int k = 0; k < g_; ++k) {
      bind[static_cast<size_t>(k)] = Slot{s_new, k};
    }
    r.bind.push_back(std::move(bind));

    for (size_t k = 0; k < offsets.size(); ++k) {
      const int j = offsets[k];
      const int s = chosen[k];
      const int donor =
          r.members[static_cast<size_t>(s)][static_cast<size_t>(j)];
      const std::vector<Slot>& daddr =
          r.addr[static_cast<size_t>(donor)];
      BlockNum a_d = 0;
      for (size_t a = 0; a < daddr.size(); ++a) {
        if (daddr[a].stripe == s && daddr[a].offset == j) {
          a_d = static_cast<BlockNum>(a);
          break;
        }
      }
      PlacementMove mv;
      mv.row = RowOf(q, s);
      mv.offset = j;
      mv.donor = donor;
      mv.donor_addr = q * static_cast<BlockNum>(n) + a_d;
      mv.new_addr =
          q * static_cast<BlockNum>(n) + 1 + static_cast<BlockNum>(k);
      plan.push_back(mv);
    }
  }

  width_ = x + 1;
  pending_ = true;
  ++epoch_;
  moves_planned_ = static_cast<BlockNum>(plan.size());
  moves_applied_ = 0;
  return plan;
}

void EpochedPlacement::ApplyMove(const PlacementMove& move) {
  assert(pending_);
  BlockNum q;
  int s;
  bool ok = DecodeRow(move.row, &q, &s);
  assert(ok);
  if (!ok) return;
  const int n = stripe_width();
  const int x = width_ - 1;
  const int s_new = stripes_per_round();
  Round& r = rounds_tab_[static_cast<size_t>(q)];
  assert(r.members[static_cast<size_t>(s)][static_cast<size_t>(move.offset)] ==
         move.donor);
  r.members[static_cast<size_t>(s)][static_cast<size_t>(move.offset)] = x;
  r.members[static_cast<size_t>(s_new)][static_cast<size_t>(move.offset)] =
      move.donor;
  r.addr[static_cast<size_t>(x)]
        [static_cast<size_t>(move.new_addr % static_cast<BlockNum>(n))] =
      Slot{s, move.offset};
  r.addr[static_cast<size_t>(move.donor)]
        [static_cast<size_t>(move.donor_addr % static_cast<BlockNum>(n))] =
      Slot{s_new, move.offset};
  ++moves_applied_;
}

Status EpochedPlacement::CommitAddMember() {
  if (!pending_) {
    return Status::InvalidArgument("no expansion in flight");
  }
  if (moves_applied_ != moves_planned_) {
    return Status::InvalidArgument(
        "expansion commit with " + std::to_string(moves_applied_) + " of " +
        std::to_string(moves_planned_) + " moves applied");
  }
  ++committed_;
  pending_ = false;
  ++epoch_;
  return Status::OK();
}

std::shared_ptr<PlacementMap> MakePlacement(const PlacementSpec& spec,
                                            int group_size, int parities,
                                            BlockNum rows) {
  if (spec.kind == PlacementKind::kRotated) {
    return std::make_shared<RotatedLayout>(group_size, parities);
  }
  const int width = PlacementGroupWidth(spec, group_size, parities);
  const int templates = spec.templates < 1 ? 1 : spec.templates;
  return std::make_shared<EpochedPlacement>(group_size, parities, width, rows,
                                            spec.seed, templates);
}

}  // namespace radd
