// TwoDRadd — the two-dimensional RADD variant (paper §7.1, after
// [GIBS89]).
//
// "The sites are arranged into a two-dimensional array and a row parity
// and column parity are constructed, each according to the formulas of
// Section 3."
//
// Data sites form an R x C grid. Every grid row has a dedicated parity
// site and spare site, and every grid column likewise — for an 8x8 grid
// that is the paper's "two collections of 16 extra disks" per 64,
// i.e. 50 % overhead (Fig. 2). A write updates the local block plus both
// parities (W + 2 RW, Fig. 3); a write to a down site goes to both spares
// and both parities (4 RW); reads of a down site reconstruct along the
// row (G RR) unless the row spare already holds the value.

#ifndef RADD_SCHEMES_RADD2D_H_
#define RADD_SCHEMES_RADD2D_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "core/radd.h"  // OpResult

namespace radd {

/// Shape of the 2D array.
struct TwoDRaddConfig {
  int grid_rows = 8;
  int grid_cols = 8;           ///< the row-direction group size G
  BlockNum blocks = 16;        ///< data blocks per data site
  size_t block_size = Block::kDefaultSize;
};

/// The 2D-RADD system. Owns its own Cluster sized
/// R*C + 2R + 2C sites.
class TwoDRadd {
 public:
  explicit TwoDRadd(const TwoDRaddConfig& config);

  Cluster* cluster() { return cluster_.get(); }
  const TwoDRaddConfig& config() const { return config_; }

  /// Total sites and the resulting space overhead in percent.
  int num_sites() const;
  double SpaceOverheadPercent() const;

  SiteId DataSite(int r, int c) const;
  SiteId RowParitySite(int r) const;
  SiteId RowSpareSite(int r) const;
  SiteId ColParitySite(int c) const;
  SiteId ColSpareSite(int c) const;

  /// Reads block `index` of data site (r, c).
  OpResult Read(SiteId client, int r, int c, BlockNum index);

  /// Writes block `index` of data site (r, c).
  OpResult Write(SiteId client, int r, int c, BlockNum index,
                 const Block& data);

  /// Recovery sweep for data site (r, c): drain spares / reconstruct,
  /// then mark up.
  Result<OpCounts> RunRecovery(int r, int c);

  /// Row and column parity both equal the XOR of their data blocks.
  Status VerifyInvariants() const;

  const Stats& stats() const { return stats_; }

 private:
  /// Current logical value of (r, c, index): row spare if valid, else the
  /// site's block (reconstructed along the row when lost).
  Result<Block> LogicalValue(SiteId client, int r, int c, BlockNum index,
                             OpCounts* counts);
  Result<Block> ReconstructViaRow(SiteId client, int r, int c,
                                  BlockNum index, OpCounts* counts);
  void Charge(SiteId client, SiteId target, bool write, OpCounts* c) const;
  /// Applies `delta` to a parity block; drops it if the site is down.
  void ApplyParityDelta(SiteId issuer, SiteId parity_site, BlockNum index,
                        const ChangeMask& delta, OpCounts* counts);

  TwoDRaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  Stats stats_;
};

}  // namespace radd

#endif  // RADD_SCHEMES_RADD2D_H_
