// Rowb — the traditional two-copy multicopy baseline (paper §7.1).
//
// "Here, we restrict attention to the case where there are exactly two
// copies of each object. In this case, any voting scheme reduces to
// something equivalent to a Read-One-Write-Both (ROWB) scheme. In fact,
// ROWB is essentially the same as a RADD with a group size of 1 and no
// spare blocks."
//
// Each site's blocks carry a backup copy at a partner site. Writes update
// both copies; when one site is down, operations proceed against the
// surviving copy and the missed updates are tracked in a dirty set, which
// recovery replays (the "copy the log to the backup" of §7.4, realized as
// block shipping).

#ifndef RADD_SCHEMES_ROWB_H_
#define RADD_SCHEMES_ROWB_H_

#include <set>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/radd.h"  // OpResult

namespace radd {

/// Placement policy for the second copy (paper §7.5 discusses both).
enum class RowbPlacement {
  /// Site j's backup lives entirely at site (j+1) mod L ("a specific
  /// second site [is] the backup for all data at a specific site").
  kDedicated,
  /// Block i of site j is backed up at site (j + 1 + i mod (L-1)) mod L
  /// ("each object can be backed up at a random site").
  kScattered,
};

/// Two-copy replicated block storage over a Cluster.
///
/// Physical layout at each site: blocks [0, blocks_per_site) hold the
/// site's primary copies; blocks [blocks_per_site, 2*blocks_per_site) hold
/// backup copies for partners (the 100 % space overhead of Fig. 2).
class Rowb {
 public:
  Rowb(Cluster* cluster, BlockNum blocks_per_site, size_t block_size,
       RowbPlacement placement = RowbPlacement::kDedicated);

  BlockNum blocks_per_site() const { return blocks_per_site_; }

  /// Reads block `index` of `home`'s data, preferring the primary copy.
  OpResult Read(SiteId client, SiteId home, BlockNum index);

  /// Writes both copies (or the surviving one, recording the other dirty).
  OpResult Write(SiteId client, SiteId home, BlockNum index,
                 const Block& data);

  /// Replays missed updates onto the recovering site (both directions:
  /// its primaries and the backups it hosts), then marks it up.
  Result<OpCounts> RunRecovery(SiteId site);

  /// Site + physical block holding the backup copy of (home, index).
  std::pair<SiteId, BlockNum> BackupOf(SiteId home, BlockNum index) const;

  /// Both copies of every clean block agree (test hook).
  Status VerifyInvariants() const;

  const Stats& stats() const { return stats_; }

 private:
  struct Copy {
    SiteId site;
    BlockNum phys;
  };
  Copy Primary(SiteId home, BlockNum index) const;
  Copy Backup(SiteId home, BlockNum index) const;

  Cluster* cluster_;
  BlockNum blocks_per_site_;
  size_t block_size_;
  RowbPlacement placement_;
  /// (home, index) pairs whose two copies diverged during a failure; the
  /// authoritative copy is the one at the site that stayed up.
  std::set<std::pair<SiteId, BlockNum>> dirty_;
  Stats stats_;
};

}  // namespace radd

#endif  // RADD_SCHEMES_ROWB_H_
