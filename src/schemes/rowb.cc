#include "schemes/rowb.h"

namespace radd {

Rowb::Rowb(Cluster* cluster, BlockNum blocks_per_site, size_t block_size,
           RowbPlacement placement)
    : cluster_(cluster),
      blocks_per_site_(blocks_per_site),
      block_size_(block_size),
      placement_(placement) {}

Rowb::Copy Rowb::Primary(SiteId home, BlockNum index) const {
  return Copy{home, index};
}

Rowb::Copy Rowb::Backup(SiteId home, BlockNum index) const {
  const SiteId l = static_cast<SiteId>(cluster_->num_sites());
  SiteId partner;
  if (placement_ == RowbPlacement::kDedicated) {
    partner = (home + 1) % l;
  } else {
    partner = (home + 1 + static_cast<SiteId>(index % (l - 1))) % l;
  }
  // Backup region: second half of the partner's address space.
  return Copy{partner, blocks_per_site_ + index};
}

std::pair<SiteId, BlockNum> Rowb::BackupOf(SiteId home,
                                           BlockNum index) const {
  Copy c = Backup(home, index);
  return {c.site, c.phys};
}

OpResult Rowb::Read(SiteId client, SiteId home, BlockNum index) {
  OpResult out;
  if (index >= blocks_per_site_) {
    out.status = Status::InvalidArgument("block out of range");
    return out;
  }
  Copy primary = Primary(home, index);
  Copy backup = Backup(home, index);
  bool primary_stale = dirty_.count({home, index}) > 0 &&
                       cluster_->StateOf(home) != SiteState::kUp;

  auto read_copy = [&](const Copy& c) -> bool {
    Site* s = cluster_->site(c.site);
    if (s == nullptr || s->state() == SiteState::kDown) return false;
    Result<BlockRecord> rec = s->store()->Read(c.phys);
    if (!rec.ok()) return false;
    if (c.site == client) {
      ++out.counts.local_reads;
    } else {
      ++out.counts.remote_reads;
    }
    out.data = rec->data;
    out.uid = rec->uid;
    out.status = Status::OK();
    return true;
  };

  // Prefer the primary unless it is down or known stale.
  if (!primary_stale && cluster_->StateOf(primary.site) == SiteState::kUp &&
      read_copy(primary)) {
    return out;
  }
  if (read_copy(backup)) return out;
  // Backup gone too: if the primary is at least recovering and clean we
  // can still serve from it.
  if (!primary_stale && read_copy(primary)) return out;
  out.status = Status::Blocked("both copies unavailable");
  return out;
}

OpResult Rowb::Write(SiteId client, SiteId home, BlockNum index,
                     const Block& data) {
  OpResult out;
  if (index >= blocks_per_site_) {
    out.status = Status::InvalidArgument("block out of range");
    return out;
  }
  if (data.size() != block_size_) {
    out.status = Status::InvalidArgument("wrong block size");
    return out;
  }
  Copy primary = Primary(home, index);
  Copy backup = Backup(home, index);
  Site* ps = cluster_->site(primary.site);
  Site* bs = cluster_->site(backup.site);
  bool p_up = ps != nullptr && ps->state() != SiteState::kDown;
  bool b_up = bs != nullptr && bs->state() != SiteState::kDown;
  // A copy lost to a disk failure counts as unavailable for writing: the
  // write lands on the surviving copy and recovery repairs the other
  // (paper §7.3: ROWB "needs only to write the single copy of the object
  // which is up").
  if (p_up && ps->state() == SiteState::kRecovering &&
      !ps->store()->Read(primary.phys).ok()) {
    p_up = false;
  }
  if (b_up && bs->state() == SiteState::kRecovering &&
      !bs->store()->Read(backup.phys).ok()) {
    b_up = false;
  }
  if (!p_up && !b_up) {
    out.status = Status::Blocked("both copies unavailable");
    return out;
  }

  Uid u = cluster_->site(client)->uids()->Next();
  if (p_up) {
    Status st = ps->store()->Write(primary.phys, data, u);
    if (!st.ok()) {
      out.status = st;
      return out;
    }
    if (primary.site == client) {
      ++out.counts.local_writes;
    } else {
      ++out.counts.remote_writes;
    }
  }
  if (b_up) {
    Status st = bs->store()->Write(backup.phys, data, u);
    if (!st.ok()) {
      out.status = st;
      return out;
    }
    // The backup update is shipped by the primary site when it is up
    // (hot-standby log flow, §7.4), so it is remote unless the backup
    // happens to be local to the issuer.
    SiteId issuer = p_up ? primary.site : client;
    if (backup.site == issuer) {
      ++out.counts.local_writes;
    } else {
      ++out.counts.remote_writes;
    }
  }

  if (p_up && b_up) {
    dirty_.erase({home, index});
  } else {
    dirty_.insert({home, index});
    stats_.Add("rowb.degraded_writes");
  }
  out.uid = u;
  out.status = Status::OK();
  return out;
}

Result<OpCounts> Rowb::RunRecovery(SiteId site) {
  Site* s = cluster_->site(site);
  if (s == nullptr) return Status::NotFound("no such site");
  if (s->state() != SiteState::kRecovering) {
    return Status::InvalidArgument("site is not recovering");
  }
  OpCounts counts;
  for (auto it = dirty_.begin(); it != dirty_.end();) {
    const auto& [home, index] = *it;
    Copy primary = Primary(home, index);
    Copy backup = Backup(home, index);
    Copy stale, live;
    if (primary.site == site) {
      stale = primary;
      live = backup;
    } else if (backup.site == site) {
      stale = backup;
      live = primary;
    } else {
      ++it;
      continue;
    }
    Site* ls = cluster_->site(live.site);
    if (ls == nullptr || ls->state() == SiteState::kDown) {
      return Status::Blocked("live copy unavailable during recovery");
    }
    Result<BlockRecord> rec = ls->store()->Read(live.phys);
    if (!rec.ok()) return rec.status();
    ++counts.remote_reads;
    RADD_RETURN_NOT_OK(s->store()->Write(stale.phys, rec->data, rec->uid));
    ++counts.local_writes;
    stats_.Add("rowb.recovery_copies");
    it = dirty_.erase(it);
  }
  // Repair blocks lost to a disk failure / disaster that carry no dirty
  // mark (no write happened while degraded): copy from the partner.
  for (SiteId home = 0; home < static_cast<SiteId>(cluster_->num_sites());
       ++home) {
    for (BlockNum i = 0; i < blocks_per_site_; ++i) {
      Copy p = Primary(home, i);
      Copy b = Backup(home, i);
      Copy here, there;
      if (p.site == site) {
        here = p;
        there = b;
      } else if (b.site == site) {
        here = b;
        there = p;
      } else {
        continue;
      }
      Result<BlockRecord> mine = s->store()->Read(here.phys);
      if (mine.ok() || !mine.status().IsDataLoss()) continue;
      Site* ls = cluster_->site(there.site);
      if (ls == nullptr || ls->state() == SiteState::kDown) {
        return Status::Blocked("live copy unavailable during recovery");
      }
      Result<BlockRecord> rec = ls->store()->Read(there.phys);
      if (!rec.ok()) return rec.status();
      ++counts.remote_reads;
      RADD_RETURN_NOT_OK(s->store()->Write(here.phys, rec->data, rec->uid));
      ++counts.local_writes;
      stats_.Add("rowb.recovery_copies");
    }
  }
  RADD_RETURN_NOT_OK(cluster_->MarkUp(site));
  return counts;
}

Status Rowb::VerifyInvariants() const {
  for (SiteId home = 0; home < static_cast<SiteId>(cluster_->num_sites());
       ++home) {
    for (BlockNum i = 0; i < blocks_per_site_; ++i) {
      if (dirty_.count({home, i}) > 0) continue;
      Copy p = Primary(home, i);
      Copy b = Backup(home, i);
      Result<BlockRecord> pr = cluster_->site(p.site)->store()->Read(p.phys);
      Result<BlockRecord> br = cluster_->site(b.site)->store()->Read(b.phys);
      if (!pr.ok() || !br.ok()) continue;  // lost copies pending repair
      if (pr->data != br->data) {
        return Status::Internal(
            "copies of (" + std::to_string(home) + ", " + std::to_string(i) +
            ") diverge without a dirty mark");
      }
    }
  }
  return Status::OK();
}

}  // namespace radd
