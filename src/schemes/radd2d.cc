#include "schemes/radd2d.h"

namespace radd {

TwoDRadd::TwoDRadd(const TwoDRaddConfig& config) : config_(config) {
  SiteConfig sc;
  sc.num_disks = 1;
  sc.blocks_per_disk = config_.blocks;
  sc.block_size = config_.block_size;
  cluster_ = std::make_unique<Cluster>(num_sites(), sc);
}

int TwoDRadd::num_sites() const {
  return config_.grid_rows * config_.grid_cols + 2 * config_.grid_rows +
         2 * config_.grid_cols;
}

double TwoDRadd::SpaceOverheadPercent() const {
  double data = config_.grid_rows * config_.grid_cols;
  double extra = 2.0 * (config_.grid_rows + config_.grid_cols);
  return 100.0 * extra / data;
}

SiteId TwoDRadd::DataSite(int r, int c) const {
  return static_cast<SiteId>(r * config_.grid_cols + c);
}
SiteId TwoDRadd::RowParitySite(int r) const {
  return static_cast<SiteId>(config_.grid_rows * config_.grid_cols + r);
}
SiteId TwoDRadd::RowSpareSite(int r) const {
  return static_cast<SiteId>(config_.grid_rows * config_.grid_cols +
                             config_.grid_rows + r);
}
SiteId TwoDRadd::ColParitySite(int c) const {
  return static_cast<SiteId>(config_.grid_rows * config_.grid_cols +
                             2 * config_.grid_rows + c);
}
SiteId TwoDRadd::ColSpareSite(int c) const {
  return static_cast<SiteId>(config_.grid_rows * config_.grid_cols +
                             2 * config_.grid_rows + config_.grid_cols + c);
}

void TwoDRadd::Charge(SiteId client, SiteId target, bool write,
                      OpCounts* c) const {
  if (write) {
    if (target == client) {
      ++c->local_writes;
    } else {
      ++c->remote_writes;
    }
  } else {
    if (target == client) {
      ++c->local_reads;
    } else {
      ++c->remote_reads;
    }
  }
}

Result<Block> TwoDRadd::ReconstructViaRow(SiteId client, int r, int c,
                                          BlockNum index, OpCounts* counts) {
  // XOR of the row's other data blocks plus the row parity — G reads.
  Block out(config_.block_size);
  for (int cc = 0; cc < config_.grid_cols; ++cc) {
    if (cc == c) continue;
    SiteId s = DataSite(r, cc);
    if (cluster_->StateOf(s) == SiteState::kDown) {
      return Status::Blocked("second failure in grid row " +
                             std::to_string(r));
    }
    Result<BlockRecord> rec = cluster_->site(s)->store()->Read(index);
    if (!rec.ok()) return rec.status();
    Charge(client, s, false, counts);
    RADD_RETURN_NOT_OK(out.XorWith(rec->data));
  }
  SiteId ps = RowParitySite(r);
  if (cluster_->StateOf(ps) == SiteState::kDown) {
    return Status::Blocked("row parity site down");
  }
  Result<BlockRecord> prec = cluster_->site(ps)->store()->Read(index);
  if (!prec.ok()) return prec.status();
  Charge(client, ps, false, counts);
  RADD_RETURN_NOT_OK(out.XorWith(prec->data));
  stats_.Add("radd2d.reconstructions");
  return out;
}

Result<Block> TwoDRadd::LogicalValue(SiteId client, int r, int c,
                                     BlockNum index, OpCounts* counts) {
  SiteId home = DataSite(r, c);
  // A valid shadowing spare always wins: it holds writes the home site
  // missed while down.
  SiteId ss = RowSpareSite(r);
  if (cluster_->StateOf(ss) == SiteState::kUp) {
    Result<BlockRecord> srec = cluster_->site(ss)->store()->Read(index);
    if (srec.ok() && srec->uid.valid() &&
        srec->spare_for == static_cast<int32_t>(home)) {
      Charge(client, ss, false, counts);
      return srec->data;
    }
  }
  if (cluster_->StateOf(home) != SiteState::kDown) {
    Result<BlockRecord> rec = cluster_->site(home)->store()->Read(index);
    if (rec.ok()) {
      Charge(client, home, false, counts);
      return rec->data;
    }
  }
  return ReconstructViaRow(client, r, c, index, counts);
}

OpResult TwoDRadd::Read(SiteId client, int r, int c, BlockNum index) {
  OpResult out;
  if (index >= config_.blocks) {
    out.status = Status::InvalidArgument("block out of range");
    return out;
  }
  Result<Block> v = LogicalValue(client, r, c, index, &out.counts);
  if (!v.ok()) {
    out.status = v.status();
    return out;
  }
  out.data = std::move(v).value();
  out.status = Status::OK();
  return out;
}

void TwoDRadd::ApplyParityDelta(SiteId issuer, SiteId parity_site,
                                BlockNum index, const ChangeMask& delta,
                                OpCounts* counts) {
  if (cluster_->StateOf(parity_site) == SiteState::kDown) {
    stats_.Add("radd2d.parity_dropped");
    return;
  }
  Site* ps = cluster_->site(parity_site);
  Result<BlockRecord> rec = ps->store()->Read(index);
  if (!rec.ok()) {
    stats_.Add("radd2d.parity_dropped");
    return;
  }
  Block parity = rec->data;
  Status st = delta.ApplyTo(&parity);
  if (!st.ok()) return;
  st = ps->store()->Write(index, parity, ps->uids()->Next());
  if (st.ok()) Charge(issuer, parity_site, true, counts);
}

OpResult TwoDRadd::Write(SiteId client, int r, int c, BlockNum index,
                         const Block& data) {
  OpResult out;
  if (index >= config_.blocks) {
    out.status = Status::InvalidArgument("block out of range");
    return out;
  }
  if (data.size() != config_.block_size) {
    out.status = Status::InvalidArgument("wrong block size");
    return out;
  }
  SiteId home = DataSite(r, c);
  SiteState state = cluster_->StateOf(home);
  // A block lost to a disk failure is written through the spares like a
  // down site's block (§3.2; Figure 3's disk-failure write = 4 RW).
  if (state == SiteState::kRecovering &&
      !cluster_->site(home)->store()->Read(index).ok()) {
    state = SiteState::kDown;
  }

  if (state != SiteState::kDown) {
    // Normal write: local block + row parity + column parity. The old
    // logical value may live in a shadowing spare (recovering site) or
    // need row reconstruction (lost block).
    Site* hs = cluster_->site(home);
    Block old_value(config_.block_size);
    bool have_old = false;
    SiteId oss = RowSpareSite(r);
    if (cluster_->StateOf(oss) == SiteState::kUp) {
      Result<BlockRecord> srec = cluster_->site(oss)->store()->Read(index);
      if (srec.ok() && srec->uid.valid() &&
          srec->spare_for == static_cast<int32_t>(home)) {
        Charge(client, oss, false, &out.counts);
        old_value = srec->data;
        have_old = true;
      }
    }
    if (!have_old) {
      Result<BlockRecord> old = hs->store()->Read(index);
      if (old.ok()) {
        old_value = old->data;
        have_old = true;
      }
    }
    if (!have_old) {
      // Lost block at a recovering site: recover the old value first.
      Result<Block> recon =
          ReconstructViaRow(client, r, c, index, &out.counts);
      if (!recon.ok()) {
        out.status = recon.status();
        return out;
      }
      old_value = std::move(recon).value();
    }
    Status st = hs->store()->Write(index, data, hs->uids()->Next());
    if (!st.ok()) {
      out.status = st;
      return out;
    }
    Charge(client, home, true, &out.counts);
    Result<ChangeMask> delta = ChangeMask::Diff(old_value, data);
    if (!delta.ok()) {
      out.status = delta.status();
      return out;
    }
    ApplyParityDelta(home, RowParitySite(r), index, *delta, &out.counts);
    ApplyParityDelta(home, ColParitySite(c), index, *delta, &out.counts);
    // Any shadowing spares are now stale.
    for (SiteId ss : {RowSpareSite(r), ColSpareSite(c)}) {
      if (cluster_->StateOf(ss) == SiteState::kDown) continue;
      Result<BlockRecord> srec = cluster_->site(ss)->store()->Read(index);
      if (srec.ok() && srec->spare_for == static_cast<int32_t>(home)) {
        (void)cluster_->site(ss)->store()->Invalidate(index);
      }
    }
    out.status = Status::OK();
    return out;
  }

  // Degraded write: both spares + both parities (Fig. 3's 4 RW).
  SiteId rss = RowSpareSite(r);
  SiteId css = ColSpareSite(c);
  if (cluster_->StateOf(rss) != SiteState::kUp ||
      cluster_->StateOf(css) != SiteState::kUp) {
    out.status = Status::Blocked("spare site unavailable");
    return out;
  }
  // Old logical value: row spare if it already shadows the block, else
  // reconstructed.
  Block old_value(config_.block_size);
  Result<BlockRecord> srec = cluster_->site(rss)->store()->Read(index);
  if (srec.ok() && srec->uid.valid() &&
      srec->spare_for == static_cast<int32_t>(home)) {
    old_value = srec->data;
  } else {
    Result<Block> recon = ReconstructViaRow(client, r, c, index, &out.counts);
    if (!recon.ok()) {
      out.status = recon.status();
      return out;
    }
    old_value = std::move(recon).value();
  }

  Uid u = cluster_->site(client)->uids()->Next();
  BlockRecord rec(config_.block_size);
  rec.data = data;
  rec.uid = u;
  rec.logical_uid = u;
  rec.spare_for = static_cast<int32_t>(home);
  Status st = cluster_->site(rss)->store()->WriteRecord(index, rec);
  if (!st.ok()) {
    out.status = st;
    return out;
  }
  Charge(client, rss, true, &out.counts);
  st = cluster_->site(css)->store()->WriteRecord(index, rec);
  if (!st.ok()) {
    out.status = st;
    return out;
  }
  Charge(client, css, true, &out.counts);

  Result<ChangeMask> delta = ChangeMask::Diff(old_value, data);
  if (!delta.ok()) {
    out.status = delta.status();
    return out;
  }
  ApplyParityDelta(rss, RowParitySite(r), index, *delta, &out.counts);
  ApplyParityDelta(css, ColParitySite(c), index, *delta, &out.counts);
  out.uid = u;
  out.status = Status::OK();
  return out;
}

Result<OpCounts> TwoDRadd::RunRecovery(int r, int c) {
  SiteId home = DataSite(r, c);
  Site* hs = cluster_->site(home);
  if (hs->state() != SiteState::kRecovering) {
    return Status::InvalidArgument("site is not recovering");
  }
  OpCounts counts;
  SiteId rss = RowSpareSite(r);
  SiteId css = ColSpareSite(c);
  for (BlockNum i = 0; i < config_.blocks; ++i) {
    // Drain the row spare if it shadows this site.
    bool drained = false;
    if (cluster_->StateOf(rss) == SiteState::kUp) {
      Result<BlockRecord> srec = cluster_->site(rss)->store()->Read(i);
      if (srec.ok() && srec->uid.valid() &&
          srec->spare_for == static_cast<int32_t>(home)) {
        Charge(home, rss, false, &counts);
        RADD_RETURN_NOT_OK(
            hs->store()->Write(i, srec->data, srec->logical_uid));
        ++counts.local_writes;
        (void)cluster_->site(rss)->store()->Invalidate(i);
        Charge(home, rss, true, &counts);
        drained = true;
      }
    }
    // Clear the column spare's shadow copy too.
    if (cluster_->StateOf(css) == SiteState::kUp) {
      Result<BlockRecord> crec = cluster_->site(css)->store()->Read(i);
      if (crec.ok() && crec->spare_for == static_cast<int32_t>(home)) {
        (void)cluster_->site(css)->store()->Invalidate(i);
      }
    }
    if (drained) continue;
    Result<BlockRecord> lrec = hs->store()->Read(i);
    if (lrec.ok()) continue;  // intact
    if (!lrec.status().IsDataLoss()) return lrec.status();
    Result<Block> recon = ReconstructViaRow(home, r, c, i, &counts);
    if (!recon.ok()) return recon.status();
    RADD_RETURN_NOT_OK(hs->store()->Write(i, *recon, hs->uids()->Next()));
    ++counts.local_writes;
  }
  RADD_RETURN_NOT_OK(cluster_->MarkUp(home));
  return counts;
}

Status TwoDRadd::VerifyInvariants() const {
  // Row parity == XOR of the row's logical data values; column likewise.
  auto logical = [&](int r, int c, BlockNum i,
                     Block* out) -> bool {
    SiteId home = DataSite(r, c);
    SiteId ss = RowSpareSite(r);
    Result<BlockRecord> srec = cluster_->site(ss)->store()->Read(i);
    if (srec.ok() && srec->uid.valid() &&
        srec->spare_for == static_cast<int32_t>(home)) {
      *out = srec->data;
      return true;
    }
    Result<BlockRecord> lrec = cluster_->site(home)->store()->Read(i);
    if (!lrec.ok()) return false;
    *out = lrec->data;
    return true;
  };

  for (BlockNum i = 0; i < config_.blocks; ++i) {
    for (int r = 0; r < config_.grid_rows; ++r) {
      if (cluster_->StateOf(RowParitySite(r)) != SiteState::kUp) continue;
      Block expected(config_.block_size);
      bool ok = true;
      for (int c = 0; c < config_.grid_cols; ++c) {
        Block v(config_.block_size);
        if (!logical(r, c, i, &v)) {
          ok = false;
          break;
        }
        RADD_RETURN_NOT_OK(expected.XorWith(v));
      }
      if (!ok) continue;
      Result<BlockRecord> prec =
          cluster_->site(RowParitySite(r))->store()->Read(i);
      if (!prec.ok()) continue;
      if (expected != prec->data) {
        return Status::Internal("row " + std::to_string(r) + " block " +
                                std::to_string(i) + ": row parity mismatch");
      }
    }
    for (int c = 0; c < config_.grid_cols; ++c) {
      if (cluster_->StateOf(ColParitySite(c)) != SiteState::kUp) continue;
      Block expected(config_.block_size);
      bool ok = true;
      for (int r = 0; r < config_.grid_rows; ++r) {
        Block v(config_.block_size);
        if (!logical(r, c, i, &v)) {
          ok = false;
          break;
        }
        RADD_RETURN_NOT_OK(expected.XorWith(v));
      }
      if (!ok) continue;
      Result<BlockRecord> prec =
          cluster_->site(ColParitySite(c))->store()->Read(i);
      if (!prec.ok()) continue;
      if (expected != prec->data) {
        return Status::Internal("col " + std::to_string(c) + " block " +
                                std::to_string(i) +
                                ": column parity mismatch");
      }
    }
  }
  return Status::OK();
}

}  // namespace radd
