// Scheme — the common harness over the six high-availability systems the
// paper compares (§7.1): RADD, ROWB, RAID, C-RAID, 2D-RADD, 1/2-RADD.
//
// Every scheme is measured by *executing* its real implementation in each
// of Figure 3's seven scenarios on a freshly built instance and counting
// the physical operations performed (Table 1's R / W / RR / RW). Figure 4
// is then those counts priced with the cost model, and Figure 2 is the
// schemes' space overheads.

#ifndef RADD_SCHEMES_SCHEME_H_
#define RADD_SCHEMES_SCHEME_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace radd {

/// The rows of Figure 3.
enum class Scenario {
  kNoFailureRead,
  kNoFailureWrite,
  kDiskFailureRead,
  kDiskFailureWrite,
  kReconstructedRead,
  kSiteFailureRead,
  kSiteFailureWrite,
};

/// All scenarios in Figure 3's row order.
const std::vector<Scenario>& AllScenarios();

std::string_view ScenarioName(Scenario s);

/// Table 1 / §7.3 cost constants (milliseconds): R = W = 30,
/// RR = RW = 2.5x = 75 (numbers from [LAZO86]).
struct CostModel {
  double r = 30.0;
  double w = 30.0;
  double rr = 75.0;
  double rw = 75.0;

  double Price(const OpCounts& c) const { return c.CostMs(r, w, rr, rw); }
};

/// One comparison system.
class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  /// Redundancy space overhead in percent (Fig. 2). Computed from the
  /// scheme's actual layout, not hard-coded.
  virtual double SpaceOverheadPercent() const = 0;

  /// Builds a fresh instance, drives it into `scenario`, performs the
  /// probe operation, and returns its physical op counts. nullopt when
  /// the scheme cannot operate in the scenario (a RAID blocks on site
  /// failures).
  virtual std::optional<OpCounts> Measure(Scenario scenario) = 0;
};

/// Factory for the paper's six schemes, all parameterized by the paper's
/// G = 8 (the 1/2-RADD uses G/2, the 2D uses a GxG grid).
std::vector<std::unique_ptr<Scheme>> MakeAllSchemes(int g = 8);

std::unique_ptr<Scheme> MakeRaddScheme(int g);
std::unique_ptr<Scheme> MakeRowbScheme();
std::unique_ptr<Scheme> MakeRaid5Scheme(int g);
std::unique_ptr<Scheme> MakeCRaidScheme(int g, int local_g);
std::unique_ptr<Scheme> MakeTwoDRaddScheme(int g);
std::unique_ptr<Scheme> MakeHalfRaddScheme(int g);

/// P+Q RADD: this repo's double-failure-tolerant extension (G + 3 members:
/// G data, XOR P, GF(256) Reed-Solomon Q, spare). Deliberately not part of
/// MakeAllSchemes so the paper's Figure 2/3/4 outputs are unchanged.
std::unique_ptr<Scheme> MakePqRaddScheme(int g);

}  // namespace radd

#endif  // RADD_SCHEMES_SCHEME_H_
