// LocalRaid — a software Level-5 RAID with striped parity and a striped
// spare, over one site's DiskArray ([PATT88], as summarized in paper §2).
//
// The disk group has G_local + 2 disks; physical block r of the disks forms
// a stripe laid out with the same rotating P/S placement as the distributed
// layout (Fig. 1 with disks in place of sites — the paper's Fig. 2 charges
// RAID the same 2-in-10 overhead as RADD, i.e. it too carries a spare).
//
// LocalRaid implements BlockStore, so a Site can mount it under the RADD
// layer to form the paper's C-RAID: every logical write becomes two
// physical writes (data + local parity), and a failed local disk is
// reconstructed transparently with G_local local reads.
//
// All operations are local; PhysicalOps() reports them so composite
// schemes can account for the amplification.

#ifndef RADD_SCHEMES_LOCAL_RAID_H_
#define RADD_SCHEMES_LOCAL_RAID_H_

#include <unordered_map>
#include <vector>

#include "disk/block_store.h"
#include "layout/layout.h"

namespace radd {

/// Configuration of a local RAID group.
struct LocalRaidConfig {
  /// Data disks per parity group (the local G).
  int group_size = 8;
  /// Reconstruct lost blocks lazily on read (true) in addition to the
  /// explicit Rebuild() sweep.
  bool repair_on_read = true;
};

/// A Level-5 RAID over `disks`. The array must have exactly
/// `group_size + 2` disks; its per-disk capacity defines the stripe count.
/// Logical blocks are exposed densely: logical block L lives on the disk
/// and stripe given by the rotating layout, skipping parity/spare cells.
class LocalRaid : public BlockStore {
 public:
  LocalRaid(DiskArray* disks, const LocalRaidConfig& config);

  /// Logical (data) capacity in blocks.
  BlockNum total_blocks() const override { return data_blocks_; }
  size_t block_size() const override { return disks_->block_size(); }

  Result<BlockRecord> Read(BlockNum block) const override;
  Result<BlockRecord> Peek(BlockNum block) const override;
  Status Write(BlockNum block, const Block& data, Uid uid) override;
  Status WriteRecord(BlockNum block, const BlockRecord& record) override;
  Status ApplyMask(BlockNum block, const ChangeMask& mask, Uid uid,
                   size_t group_position, size_t group_size) override;
  Status Invalidate(BlockNum block) override;

  OpCounts PhysicalOps() const override { return ops_; }

  /// Injects a failure of local disk `d`.
  Status FailDisk(int d);
  /// True if any block is still lost.
  bool Degraded() const;
  /// Reconstructs every lost block onto the (swapped-in) replacement disk
  /// — the paper §2's background reconstruction. Returns ops performed.
  Result<OpCounts> Rebuild();

  const RaddLayout& layout() const { return layout_; }

  /// Disk on which logical block L's cell lives (for fault injection).
  int DiskOfLogical(BlockNum logical) const { return AddrOf(logical).disk; }

 private:
  struct Addr {
    int disk;
    BlockNum stripe;
    BlockNum phys;  // flat address in the DiskArray
  };
  /// Maps logical data block L to its physical location.
  Addr AddrOf(BlockNum logical) const;
  BlockNum PhysOf(int disk, BlockNum stripe) const;

  /// Reads a physical cell, reconstructing from the stripe if it is lost
  /// (and repairing it when configured). Counts physical ops.
  Result<BlockRecord> ReadCell(int disk, BlockNum stripe) const;

  /// XOR-reconstructs cell (disk, stripe) from the other G+1 non-spare
  /// cells of the stripe.
  Result<Block> ReconstructCell(int disk, BlockNum stripe) const;

  /// Applies `delta` to the stripe's parity cell (formula (1)). Lost
  /// parity cells are rebuilt from scratch first (deferred to Rebuild()
  /// while sibling cells are themselves lost).
  Status UpdateLocalParity(BlockNum stripe, const ChangeMask& delta);

  /// Marks a stripe's parity lost when it can no longer be kept
  /// consistent (total stripe loss being rebuilt from above).
  Status PoisonLocalParity(BlockNum stripe);

  /// Per-block record metadata (UIDs, UID arrays, spare bookkeeping of the
  /// layer above). XOR parity protects block *contents* only, so the
  /// metadata is mirrored here — the software analogue of the duplexed
  /// NVRAM metadata store a real array controller keeps — and restored
  /// when a lost cell is reconstructed.
  struct Meta {
    Uid uid;
    std::vector<Uid> uid_array;
    Uid logical_uid;
    int32_t spare_for = -1;
  };
  void SaveMeta(BlockNum phys, const BlockRecord& rec) const;
  void RestoreMeta(BlockNum phys, BlockRecord* rec) const;

  DiskArray* disks_;
  LocalRaidConfig config_;
  RaddLayout layout_;
  BlockNum stripes_;
  BlockNum data_blocks_;
  mutable OpCounts ops_;
  mutable std::unordered_map<BlockNum, Meta> meta_;
};

}  // namespace radd

#endif  // RADD_SCHEMES_LOCAL_RAID_H_
