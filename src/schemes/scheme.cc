#include "schemes/scheme.h"

#include "cluster/cluster.h"
#include "core/radd.h"
#include "schemes/local_raid.h"
#include "schemes/radd2d.h"
#include "schemes/rowb.h"

namespace radd {

namespace {
constexpr size_t kProbeBlockSize = 512;  // small blocks keep probes fast

Block ProbeBlock(uint64_t seed, size_t size = kProbeBlockSize) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}
}  // namespace

const std::vector<Scenario>& AllScenarios() {
  static const std::vector<Scenario> kAll = {
      Scenario::kNoFailureRead,     Scenario::kNoFailureWrite,
      Scenario::kDiskFailureRead,   Scenario::kDiskFailureWrite,
      Scenario::kReconstructedRead, Scenario::kSiteFailureRead,
      Scenario::kSiteFailureWrite,
  };
  return kAll;
}

std::string_view ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kNoFailureRead:
      return "no failure read";
    case Scenario::kNoFailureWrite:
      return "no failure write";
    case Scenario::kDiskFailureRead:
      return "disk failure read";
    case Scenario::kDiskFailureWrite:
      return "disk failure write";
    case Scenario::kReconstructedRead:
      return "previously reconstructed read";
    case Scenario::kSiteFailureRead:
      return "site failure read";
    case Scenario::kSiteFailureWrite:
      return "site failure write";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// RADD (and 1/2-RADD, which is the same system with half the group size).
// ---------------------------------------------------------------------------

class RaddScheme : public Scheme {
 public:
  RaddScheme(std::string name, int g, int parities = 1)
      : name_(std::move(name)), g_(g), parities_(parities) {}

  std::string name() const override { return name_; }

  double SpaceOverheadPercent() const override {
    // Per (G+1+parities)-row cycle: G data blocks, `parities` parity
    // blocks, 1 spare per site. Single parity: 2/G; P+Q: 3/G.
    return 100.0 * static_cast<double>(1 + parities_) /
           static_cast<double>(g_);
  }

  std::optional<OpCounts> Measure(Scenario scenario) override {
    RaddConfig config;
    config.group_size = g_;
    config.parities = parities_;
    config.rows = static_cast<BlockNum>(g_ + 1 + parities_);
    config.block_size = kProbeBlockSize;
    SiteConfig sc{1, config.rows, config.block_size};
    Cluster cluster(g_ + 1 + parities_, sc);
    RaddGroup group(&cluster, config);

    // The probe block: member 2's data block 0, client at its own site.
    const int home = 2;
    const BlockNum i = 0;
    const SiteId self = group.SiteOfMember(home);
    BlockNum row = group.layout().DataToRow(home, i);
    const SiteId spare_site = group.SiteOfMember(
        static_cast<int>(group.layout().SpareSite(row)));
    group.Write(self, home, i, ProbeBlock(1));

    switch (scenario) {
      case Scenario::kNoFailureRead:
        return group.Read(self, home, i).counts;
      case Scenario::kNoFailureWrite:
        return group.Write(self, home, i, ProbeBlock(2)).counts;
      case Scenario::kDiskFailureRead: {
        cluster.FailDisk(self, 0);
        return group.Read(self, home, i).counts;
      }
      case Scenario::kDiskFailureWrite: {
        cluster.FailDisk(self, 0);
        // Prime the spare so the probe is the steady-state degraded write.
        group.Write(self, home, i, ProbeBlock(2));
        return group.Write(self, home, i, ProbeBlock(3)).counts;
      }
      case Scenario::kReconstructedRead: {
        cluster.CrashSite(self);
        // A degraded read materializes the value into the spare ...
        group.Read(spare_site, home, i);
        // ... so this read resolves with a single spare access.
        return group.Read(spare_site == self ? self : group.SiteOfMember(0),
                          home, i)
            .counts;
      }
      case Scenario::kSiteFailureRead: {
        cluster.CrashSite(self);
        // Probe from the spare site so all G source reads are remote, as
        // Figure 3 counts them.
        return group.Read(spare_site, home, i).counts;
      }
      case Scenario::kSiteFailureWrite: {
        cluster.CrashSite(self);
        SiteId client = group.SiteOfMember(3);
        group.Write(client, home, i, ProbeBlock(2));  // prime spare
        return group.Write(client, home, i, ProbeBlock(3)).counts;
      }
    }
    return std::nullopt;
  }

 private:
  std::string name_;
  int g_;
  int parities_;
};

// ---------------------------------------------------------------------------
// ROWB.
// ---------------------------------------------------------------------------

class RowbScheme : public Scheme {
 public:
  std::string name() const override { return "ROWB"; }
  double SpaceOverheadPercent() const override { return 100.0; }

  std::optional<OpCounts> Measure(Scenario scenario) override {
    SiteConfig sc{1, 8, kProbeBlockSize};  // room for primaries + backups
    Cluster cluster(4, sc);
    Rowb rowb(&cluster, 4, kProbeBlockSize);
    const SiteId home = 1;
    const BlockNum i = 0;
    rowb.Write(home, home, i, ProbeBlock(1));
    auto [backup_site, backup_phys] = rowb.BackupOf(home, i);

    switch (scenario) {
      case Scenario::kNoFailureRead:
        return rowb.Read(home, home, i).counts;
      case Scenario::kNoFailureWrite:
        return rowb.Write(home, home, i, ProbeBlock(2)).counts;
      case Scenario::kDiskFailureRead:
        cluster.FailDisk(home, 0);
        return rowb.Read(home, home, i).counts;
      case Scenario::kDiskFailureWrite:
        cluster.FailDisk(home, 0);
        return rowb.Write(home, home, i, ProbeBlock(2)).counts;
      case Scenario::kReconstructedRead: {
        // Fail, miss a write, recover; the repaired copy serves locally.
        cluster.CrashSite(home);
        rowb.Write(backup_site, home, i, ProbeBlock(2));
        cluster.RestoreSite(home);
        rowb.RunRecovery(home);
        return rowb.Read(home, home, i).counts;
      }
      case Scenario::kSiteFailureRead: {
        cluster.CrashSite(home);
        SiteId third = (backup_site + 1) % 4 == home
                           ? (backup_site + 2) % 4
                           : (backup_site + 1) % 4;
        return rowb.Read(third, home, i).counts;
      }
      case Scenario::kSiteFailureWrite: {
        cluster.CrashSite(home);
        SiteId third = (backup_site + 1) % 4 == home
                           ? (backup_site + 2) % 4
                           : (backup_site + 1) % 4;
        return rowb.Write(third, home, i, ProbeBlock(2)).counts;
      }
    }
    return std::nullopt;
  }
};

// ---------------------------------------------------------------------------
// Level-5 RAID (single site).
// ---------------------------------------------------------------------------

class Raid5Scheme : public Scheme {
 public:
  explicit Raid5Scheme(int g) : g_(g) {}

  std::string name() const override { return "RAID"; }
  double SpaceOverheadPercent() const override {
    return 100.0 * 2.0 / static_cast<double>(g_);
  }

  std::optional<OpCounts> Measure(Scenario scenario) override {
    DiskArray disks(g_ + 2, 4, kProbeBlockSize);
    LocalRaidConfig config;
    config.group_size = g_;
    config.repair_on_read = false;  // measure the pure read cost
    LocalRaid raid(&disks, config);
    const BlockNum i = 0;
    raid.Write(i, ProbeBlock(1), Uid::Make(0, 1));
    const int data_disk = static_cast<int>(raid.layout().DataSites(0)[0]);

    OpCounts before = raid.PhysicalOps();
    switch (scenario) {
      case Scenario::kNoFailureRead:
        raid.Read(i);
        break;
      case Scenario::kNoFailureWrite:
        raid.Write(i, ProbeBlock(2), Uid::Make(0, 2));
        break;
      case Scenario::kDiskFailureRead:
        raid.FailDisk(data_disk);
        before = raid.PhysicalOps();
        raid.Read(i);
        break;
      case Scenario::kDiskFailureWrite:
        raid.FailDisk(data_disk);
        // Prime: the first write to a lost block reconstructs the old
        // value; the steady state is the paper's "normal write to the
        // replacement disk and its associated parity disk".
        raid.Write(i, ProbeBlock(2), Uid::Make(0, 2));
        before = raid.PhysicalOps();
        raid.Write(i, ProbeBlock(3), Uid::Make(0, 3));
        break;
      case Scenario::kReconstructedRead: {
        LocalRaidConfig repair = config;
        repair.repair_on_read = true;
        LocalRaid raid2(&disks, repair);
        raid2.FailDisk(data_disk);
        raid2.Read(i);  // reconstructs and repairs
        before = raid2.PhysicalOps();
        raid2.Read(i);
        return raid2.PhysicalOps() - before;
      }
      case Scenario::kSiteFailureRead:
      case Scenario::kSiteFailureWrite:
        // "a RAID cannot handle either failure and must block."
        return std::nullopt;
    }
    return raid.PhysicalOps() - before;
  }

 private:
  int g_;
};

// ---------------------------------------------------------------------------
// C-RAID: RADD over sites whose stores are local RAIDs.
// ---------------------------------------------------------------------------

class CRaidScheme : public Scheme {
 public:
  CRaidScheme(int g, int local_g) : g_(g), local_g_(local_g) {}

  std::string name() const override { return "C-RAID"; }

  double SpaceOverheadPercent() const override {
    // (G+2)/G at the RADD level times (Gl+2)/Gl locally, minus one.
    double radd = static_cast<double>(g_ + 2) / g_;
    double local = static_cast<double>(local_g_ + 2) / local_g_;
    return 100.0 * (radd * local - 1.0);
  }

  std::optional<OpCounts> Measure(Scenario scenario) override {
    RaddConfig config;
    config.group_size = g_;
    config.rows = static_cast<BlockNum>(g_ + 2);
    config.block_size = kProbeBlockSize;
    if (scenario == Scenario::kSiteFailureRead) {
      config.materialize_on_degraded_read = false;
    }
    // Each site: a local RAID of local_g_+2 disks exposing >= rows blocks.
    BlockNum stripes =
        (config.rows + static_cast<BlockNum>(local_g_) - 1) /
        static_cast<BlockNum>(local_g_);
    SiteConfig sc{local_g_ + 2, stripes, config.block_size};
    Cluster cluster(g_ + 2, sc);
    std::vector<LocalRaid*> raids;
    for (int s = 0; s < cluster.num_sites(); ++s) {
      LocalRaidConfig lc;
      lc.group_size = local_g_;
      lc.repair_on_read = false;
      auto raid = std::make_unique<LocalRaid>(
          cluster.site(static_cast<SiteId>(s))->disks(), lc);
      raids.push_back(raid.get());
      cluster.site(static_cast<SiteId>(s))->set_store(std::move(raid));
    }
    RaddGroup group(&cluster, config);

    const int home = 2;
    const BlockNum i = 0;
    const SiteId self = group.SiteOfMember(home);
    BlockNum row = group.layout().DataToRow(home, i);
    const SiteId spare_site = group.SiteOfMember(
        static_cast<int>(group.layout().SpareSite(row)));
    group.Write(self, home, i, ProbeBlock(1));

    // Combined accounting: the RADD layer's logical charges plus the
    // physical amplification of the local RAIDs, attributed as local ops
    // at whichever site performed them.
    auto phys_total = [&raids]() {
      OpCounts total;
      for (LocalRaid* r : raids) total += r->PhysicalOps();
      return total;
    };
    auto combined = [&](const OpCounts& logical,
                        const OpCounts& phys_delta) {
      OpCounts out = logical;
      uint64_t logical_writes = logical.local_writes + logical.remote_writes;
      uint64_t logical_reads = logical.local_reads + logical.remote_reads;
      if (phys_delta.local_writes > logical_writes) {
        out.local_writes += phys_delta.local_writes - logical_writes;
      }
      if (phys_delta.local_reads > logical_reads) {
        out.local_reads += phys_delta.local_reads - logical_reads;
      }
      return out;
    };

    OpCounts before = phys_total();
    OpCounts logical;
    switch (scenario) {
      case Scenario::kNoFailureRead:
        logical = group.Read(self, home, i).counts;
        break;
      case Scenario::kNoFailureWrite:
        logical = group.Write(self, home, i, ProbeBlock(2)).counts;
        break;
      case Scenario::kDiskFailureRead: {
        // A *local* disk fails; the site's RAID absorbs it, the site stays
        // up, and the read reconstructs locally with G_local reads.
        int data_disk = raids[home]->DiskOfLogical(row);
        cluster.site(self)->disks()->FailDisk(data_disk);
        before = phys_total();
        logical = group.Read(self, home, i).counts;
        break;
      }
      case Scenario::kDiskFailureWrite: {
        int data_disk = raids[home]->DiskOfLogical(row);
        cluster.site(self)->disks()->FailDisk(data_disk);
        group.Write(self, home, i, ProbeBlock(2));  // absorbs reconstruction
        before = phys_total();
        logical = group.Write(self, home, i, ProbeBlock(3)).counts;
        break;
      }
      case Scenario::kReconstructedRead: {
        cluster.CrashSite(self);
        group.Read(spare_site, home, i);
        before = phys_total();
        logical = group.Read(group.SiteOfMember(0), home, i).counts;
        break;
      }
      case Scenario::kSiteFailureRead: {
        cluster.CrashSite(self);
        before = phys_total();
        logical = group.Read(spare_site, home, i).counts;
        break;
      }
      case Scenario::kSiteFailureWrite: {
        cluster.CrashSite(self);
        SiteId client = group.SiteOfMember(3);
        group.Write(client, home, i, ProbeBlock(2));
        before = phys_total();
        logical = group.Write(client, home, i, ProbeBlock(3)).counts;
        break;
      }
    }
    return combined(logical, phys_total() - before);
  }

 private:
  int g_;
  int local_g_;
};

// ---------------------------------------------------------------------------
// 2D-RADD.
// ---------------------------------------------------------------------------

class TwoDRaddScheme : public Scheme {
 public:
  explicit TwoDRaddScheme(int g) : g_(g) {}

  std::string name() const override { return "2D-RADD"; }
  double SpaceOverheadPercent() const override {
    TwoDRaddConfig c;
    c.grid_rows = c.grid_cols = g_;
    return TwoDRadd(c).SpaceOverheadPercent();
  }

  std::optional<OpCounts> Measure(Scenario scenario) override {
    TwoDRaddConfig config;
    config.grid_rows = config.grid_cols = g_;
    config.blocks = 2;
    config.block_size = kProbeBlockSize;
    TwoDRadd radd2d(config);
    Cluster* cluster = radd2d.cluster();
    const int r = 1, c = 2;
    const BlockNum i = 0;
    const SiteId self = radd2d.DataSite(r, c);
    const SiteId probe_client = radd2d.RowSpareSite(r);
    radd2d.Write(self, r, c, i, ProbeBlock(1));

    switch (scenario) {
      case Scenario::kNoFailureRead:
        return radd2d.Read(self, r, c, i).counts;
      case Scenario::kNoFailureWrite:
        return radd2d.Write(self, r, c, i, ProbeBlock(2)).counts;
      case Scenario::kDiskFailureRead:
        cluster->FailDisk(self, 0);
        return radd2d.Read(self, r, c, i).counts;
      case Scenario::kDiskFailureWrite:
        cluster->FailDisk(self, 0);
        radd2d.Write(self, r, c, i, ProbeBlock(2));  // prime spares
        return radd2d.Write(self, r, c, i, ProbeBlock(3)).counts;
      // NOLINTNEXTLINE
      case Scenario::kReconstructedRead:
        cluster->CrashSite(self);
        radd2d.Write(probe_client, r, c, i, ProbeBlock(2));  // onto spares
        return radd2d.Read(radd2d.DataSite(r, 0), r, c, i).counts;
      case Scenario::kSiteFailureRead:
        cluster->CrashSite(self);
        return radd2d.Read(probe_client, r, c, i).counts;
      case Scenario::kSiteFailureWrite: {
        cluster->CrashSite(self);
        SiteId client = radd2d.DataSite(r + 1, c + 1);
        radd2d.Write(client, r, c, i, ProbeBlock(2));
        return radd2d.Write(client, r, c, i, ProbeBlock(3)).counts;
      }
    }
    return std::nullopt;
  }

 private:
  int g_;
};

std::unique_ptr<Scheme> MakeRaddScheme(int g) {
  return std::make_unique<RaddScheme>("RADD", g);
}
std::unique_ptr<Scheme> MakeRowbScheme() {
  return std::make_unique<RowbScheme>();
}
std::unique_ptr<Scheme> MakeRaid5Scheme(int g) {
  return std::make_unique<Raid5Scheme>(g);
}
std::unique_ptr<Scheme> MakeCRaidScheme(int g, int local_g) {
  return std::make_unique<CRaidScheme>(g, local_g);
}
std::unique_ptr<Scheme> MakeTwoDRaddScheme(int g) {
  return std::make_unique<TwoDRaddScheme>(g);
}
std::unique_ptr<Scheme> MakeHalfRaddScheme(int g) {
  return std::make_unique<RaddScheme>("1/2-RADD", g / 2);
}
std::unique_ptr<Scheme> MakePqRaddScheme(int g) {
  // Not part of MakeAllSchemes: P+Q is this repo's extension, not one of
  // the paper's six comparison systems, so Figures 2/3/4 stay unchanged.
  return std::make_unique<RaddScheme>("P+Q RADD", g, /*parities=*/2);
}

std::vector<std::unique_ptr<Scheme>> MakeAllSchemes(int g) {
  std::vector<std::unique_ptr<Scheme>> out;
  out.push_back(MakeRaddScheme(g));
  out.push_back(MakeRowbScheme());
  out.push_back(MakeRaid5Scheme(g));
  out.push_back(MakeCRaidScheme(g, g));
  out.push_back(MakeTwoDRaddScheme(g));
  out.push_back(MakeHalfRaddScheme(g));
  return out;
}

}  // namespace radd
