#include "schemes/local_raid.h"

#include <cassert>

namespace radd {

LocalRaid::LocalRaid(DiskArray* disks, const LocalRaidConfig& config)
    : disks_(disks), config_(config), layout_(config.group_size) {
  assert(disks_->num_disks() == layout_.num_sites() &&
         "LocalRaid needs exactly G_local + 2 disks");
  stripes_ = disks_->blocks_per_disk();
  data_blocks_ = stripes_ * static_cast<BlockNum>(config_.group_size);
}

LocalRaid::Addr LocalRaid::AddrOf(BlockNum logical) const {
  // Stripe-major dense mapping: stripe s carries logical blocks
  // [s*G, (s+1)*G) on its G data disks, in disk order.
  const BlockNum g = static_cast<BlockNum>(config_.group_size);
  BlockNum stripe = logical / g;
  BlockNum j = logical % g;
  std::vector<SiteId> data_disks = layout_.DataSites(stripe);
  int disk = static_cast<int>(data_disks[static_cast<size_t>(j)]);
  return Addr{disk, stripe, PhysOf(disk, stripe)};
}

BlockNum LocalRaid::PhysOf(int disk, BlockNum stripe) const {
  return static_cast<BlockNum>(disk) * stripes_ + stripe;
}

void LocalRaid::SaveMeta(BlockNum phys, const BlockRecord& rec) const {
  meta_[phys] = Meta{rec.uid, rec.uid_array, rec.logical_uid, rec.spare_for};
}

void LocalRaid::RestoreMeta(BlockNum phys, BlockRecord* rec) const {
  auto it = meta_.find(phys);
  if (it == meta_.end()) return;
  rec->uid = it->second.uid;
  rec->uid_array = it->second.uid_array;
  rec->logical_uid = it->second.logical_uid;
  rec->spare_for = it->second.spare_for;
}

Result<Block> LocalRaid::ReconstructCell(int disk, BlockNum stripe) const {
  std::vector<SiteId> sources =
      layout_.ReconstructionSources(static_cast<SiteId>(disk), stripe);
  Block out(disks_->block_size());
  for (SiteId src : sources) {
    Result<BlockRecord> rec = disks_->Read(PhysOf(static_cast<int>(src),
                                                  stripe));
    if (!rec.ok()) {
      return Status::DataLoss(
          "double disk failure in stripe " + std::to_string(stripe) +
          ": cannot reconstruct");
    }
    ++ops_.local_reads;
    RADD_RETURN_NOT_OK(out.XorWith(rec->data));
  }
  return out;
}

Result<BlockRecord> LocalRaid::ReadCell(int disk, BlockNum stripe) const {
  Result<BlockRecord> rec = disks_->Read(PhysOf(disk, stripe));
  if (rec.ok()) {
    ++ops_.local_reads;
    return rec;
  }
  if (!rec.status().IsDataLoss()) return rec.status();

  // Lost cell: reconstruct from the stripe (paper §2: "the corresponding
  // block must be reconstructed immediately").
  Result<Block> data = ReconstructCell(disk, stripe);
  if (!data.ok()) return data.status();
  BlockRecord out(disks_->block_size());
  out.data = *data;
  RestoreMeta(PhysOf(disk, stripe), &out);
  if (config_.repair_on_read) {
    ++ops_.local_writes;
    Status st = disks_->WriteRecord(PhysOf(disk, stripe), out);
    if (!st.ok()) return st;
  }
  return out;
}

Result<BlockRecord> LocalRaid::Read(BlockNum block) const {
  if (block >= data_blocks_) {
    return Status::NotFound("logical block beyond RAID capacity");
  }
  Addr a = AddrOf(block);
  return ReadCell(a.disk, a.stripe);
}

Result<BlockRecord> LocalRaid::Peek(BlockNum block) const {
  if (block >= data_blocks_) {
    return Status::NotFound("logical block beyond RAID capacity");
  }
  Addr a = AddrOf(block);
  Result<BlockRecord> rec = disks_->Read(a.phys);
  if (rec.ok()) return rec;  // buffered: uncounted
  if (!rec.status().IsDataLoss()) return rec.status();
  // A lost cell still costs real reconstruction work even on a peek.
  Result<Block> data = ReconstructCell(a.disk, a.stripe);
  if (!data.ok()) return data.status();
  BlockRecord out(disks_->block_size());
  out.data = std::move(data).value();
  RestoreMeta(a.phys, &out);
  return out;
}

Status LocalRaid::Write(BlockNum block, const Block& data, Uid uid) {
  if (block >= data_blocks_) {
    return Status::NotFound("logical block beyond RAID capacity");
  }
  Addr a = AddrOf(block);
  // Old value for the parity delta (buffered: not charged when intact).
  Block old_value(disks_->block_size());
  bool stripe_unrecoverable = false;
  Result<BlockRecord> old = disks_->Read(a.phys);
  if (old.ok()) {
    old_value = old->data;
  } else if (old.status().IsDataLoss()) {
    Result<Block> recon = ReconstructCell(a.disk, a.stripe);
    if (recon.ok()) {
      old_value = std::move(recon).value();
    } else if (recon.status().IsDataLoss()) {
      // Total stripe loss (e.g. a disaster wiped the whole array while a
      // higher layer rebuilds it block by block): accept the write and
      // defer the stripe's parity.
      stripe_unrecoverable = true;
    } else {
      return recon.status();
    }
  } else {
    return old.status();
  }
  RADD_RETURN_NOT_OK(disks_->Write(a.phys, data, uid));
  {
    BlockRecord written(disks_->block_size());
    written.uid = uid;
    SaveMeta(a.phys, written);
  }
  ++ops_.local_writes;
  if (stripe_unrecoverable) return PoisonLocalParity(a.stripe);
  Result<ChangeMask> mask = ChangeMask::Diff(old_value, data);
  if (!mask.ok()) return mask.status();
  return UpdateLocalParity(a.stripe, *mask);
}

Status LocalRaid::WriteRecord(BlockNum block, const BlockRecord& record) {
  if (block >= data_blocks_) {
    return Status::NotFound("logical block beyond RAID capacity");
  }
  Addr a = AddrOf(block);
  // Old value for the parity delta (buffered: not charged when intact).
  Block old_value(disks_->block_size());
  bool stripe_unrecoverable = false;
  Result<BlockRecord> old = disks_->Read(a.phys);
  if (old.ok()) {
    old_value = old->data;
  } else if (old.status().IsDataLoss()) {
    Result<Block> recon = ReconstructCell(a.disk, a.stripe);
    if (recon.ok()) {
      old_value = std::move(recon).value();
    } else if (recon.status().IsDataLoss()) {
      // Total stripe loss (e.g. a disaster wiped the whole array while a
      // higher layer rebuilds it block by block): accept the write and
      // defer the stripe's parity.
      stripe_unrecoverable = true;
    } else {
      return recon.status();
    }
  } else {
    return old.status();
  }
  RADD_RETURN_NOT_OK(disks_->WriteRecord(a.phys, record));
  SaveMeta(a.phys, record);
  ++ops_.local_writes;
  if (stripe_unrecoverable) return PoisonLocalParity(a.stripe);
  Result<ChangeMask> mask = ChangeMask::Diff(old_value, record.data);
  if (!mask.ok()) return mask.status();
  return UpdateLocalParity(a.stripe, *mask);
}

Status LocalRaid::ApplyMask(BlockNum block, const ChangeMask& mask, Uid uid,
                            size_t group_position, size_t group_size) {
  if (block >= data_blocks_) {
    return Status::NotFound("logical block beyond RAID capacity");
  }
  Addr a = AddrOf(block);
  Status st = disks_->ApplyMask(a.phys, mask, uid, group_position,
                                group_size);
  if (st.IsDataLoss()) {
    // The cell is lost: restore its contents first, then apply.
    Result<Block> recon = ReconstructCell(a.disk, a.stripe);
    if (!recon.ok()) return recon.status();
    BlockRecord rec(disks_->block_size());
    rec.data = std::move(recon).value();
    RestoreMeta(a.phys, &rec);
    RADD_RETURN_NOT_OK(disks_->WriteRecord(a.phys, rec));
    ++ops_.local_writes;
    st = disks_->ApplyMask(a.phys, mask, uid, group_position, group_size);
  }
  RADD_RETURN_NOT_OK(st);
  {
    Result<BlockRecord> now = disks_->Read(a.phys);
    if (now.ok()) SaveMeta(a.phys, *now);
  }
  ++ops_.local_writes;
  // The same delta keeps the *local* stripe parity current — XOR delta
  // composition: local-parity' = local-parity XOR (new XOR old).
  return UpdateLocalParity(a.stripe, mask);
}

Status LocalRaid::Invalidate(BlockNum block) {
  if (block >= data_blocks_) {
    return Status::NotFound("logical block beyond RAID capacity");
  }
  Addr a = AddrOf(block);
  ++ops_.local_writes;
  // Metadata-only change: contents untouched, so local parity is
  // unaffected.
  RADD_RETURN_NOT_OK(disks_->Invalidate(a.phys));
  Result<BlockRecord> now = disks_->Read(a.phys);
  if (now.ok()) SaveMeta(a.phys, *now);
  return Status::OK();
}

Status LocalRaid::PoisonLocalParity(BlockNum stripe) {
  // The stripe's parity can no longer be made consistent (siblings are
  // still lost): mark it lost so nothing reconstructs from stale parity.
  // Rebuild() restores it once the stripe's cells are back.
  int pd = static_cast<int>(layout_.ParitySite(stripe));
  return disks_->Discard(PhysOf(pd, stripe));
}

Status LocalRaid::UpdateLocalParity(BlockNum stripe, const ChangeMask& delta) {
  int pd = static_cast<int>(layout_.ParitySite(stripe));
  BlockNum phys = PhysOf(pd, stripe);
  Result<BlockRecord> rec = disks_->Read(phys);
  if (!rec.ok()) {
    if (!rec.status().IsDataLoss()) return rec.status();
    // Lost parity cell: a delta is meaningless; rebuild it from scratch
    // AFTER the data write that produced `delta` (so the fresh parity
    // already includes it). If siblings are still lost, defer to
    // Rebuild().
    Result<Block> fresh = ReconstructCell(pd, stripe);
    if (!fresh.ok()) {
      return fresh.status().IsDataLoss() ? Status::OK() : fresh.status();
    }
    BlockRecord prec(disks_->block_size());
    prec.data = std::move(fresh).value();
    ++ops_.local_writes;
    return disks_->WriteRecord(phys, prec);
  }
  Block parity = rec->data;
  RADD_RETURN_NOT_OK(delta.ApplyTo(&parity));
  ++ops_.local_writes;
  return disks_->Write(phys, parity, rec->uid);
}

Status LocalRaid::FailDisk(int d) { return disks_->FailDisk(d); }

bool LocalRaid::Degraded() const {
  for (int d = 0; d < disks_->num_disks(); ++d) {
    if (disks_->DiskFailed(d)) return true;
  }
  return false;
}

Result<OpCounts> LocalRaid::Rebuild() {
  OpCounts before = ops_;
  for (int d = 0; d < disks_->num_disks(); ++d) {
    if (!disks_->DiskFailed(d)) continue;
    for (BlockNum stripe = 0; stripe < stripes_; ++stripe) {
      BlockNum phys = PhysOf(d, stripe);
      Result<BlockRecord> rec = disks_->Read(phys);
      if (rec.ok()) continue;  // already repaired (e.g. on read)
      if (!rec.status().IsDataLoss()) return rec.status();
      BlockRecord out(disks_->block_size());
      if (layout_.RoleOf(static_cast<SiteId>(d), stripe) ==
          BlockRole::kSpare) {
        // Spare cells carry no parity-covered content: just clear.
        meta_.erase(phys);
      } else {
        Result<Block> data = ReconstructCell(d, stripe);
        if (!data.ok()) return data.status();
        out.data = std::move(data).value();
        RestoreMeta(phys, &out);
      }
      RADD_RETURN_NOT_OK(disks_->WriteRecord(phys, out));
      ++ops_.local_writes;
    }
  }
  return ops_ - before;
}

}  // namespace radd
