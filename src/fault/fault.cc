#include "fault/fault.h"

#include <iterator>
#include <utility>

#include "common/rng.h"

namespace radd {

std::string_view FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kCrashRestart: return "crash_restart";
    case FaultKind::kDisaster: return "disaster";
    case FaultKind::kDiskFailure: return "disk_failure";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLatentErrors: return "latent_errors";
    case FaultKind::kCorruption: return "corruption";
    case FaultKind::kGraySlow: return "gray_slow";
    case FaultKind::kDropWindow: return "drop_window";
    case FaultKind::kAsymPartition: return "asym_partition";
  }
  return "?";
}

FaultPlan FaultPlan::Random(uint64_t seed, const FaultPlanConfig& config) {
  Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_probability = config.drop_probability;
  plan.duplicate_probability = config.duplicate_probability;
  plan.reorder_jitter = config.reorder_jitter;

  constexpr FaultKind kAllKinds[] = {
      FaultKind::kCrashRestart, FaultKind::kDisaster,
      FaultKind::kDiskFailure,  FaultKind::kPartition,
      FaultKind::kLatentErrors, FaultKind::kCorruption,
      FaultKind::kGraySlow,     FaultKind::kDropWindow,
      FaultKind::kAsymPartition,
  };
  const int n = config.episodes < 2 ? 2 : config.episodes;
  std::vector<FaultKind> kinds;
  kinds.reserve(static_cast<size_t>(n));
  // Coverage floor: every schedule crashes a site and hits latent errors.
  kinds.push_back(FaultKind::kCrashRestart);
  kinds.push_back(FaultKind::kLatentErrors);
  for (int i = 2; i < n; ++i) {
    kinds.push_back(kAllKinds[rng.Uniform(std::size(kAllKinds))]);
  }
  // Fisher-Yates so the mandatory kinds land anywhere in the schedule.
  for (size_t i = kinds.size() - 1; i > 0; --i) {
    std::swap(kinds[i], kinds[rng.Uniform(i + 1)]);
  }

  for (FaultKind kind : kinds) {
    Episode ep;
    ep.kind = kind;
    ep.member = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(config.members)));
    ep.duration =
        rng.UniformRange(config.min_duration, config.max_duration);
    // Strike mid-window so the fault lands on in-flight operations (the
    // crash-between-W1-and-parity-ack cases live here).
    ep.fault_offset = rng.UniformRange(ep.duration / 4, ep.duration / 2);
    ep.blocks = 1 + static_cast<int>(rng.Uniform(
                        config.rows > 3 ? config.rows / 2 : 1));
    ep.slow_factor = 2 + static_cast<uint32_t>(rng.Uniform(5));
    ep.drop_p = 0.15 + 0.35 * rng.NextDouble();
    // Drawn unconditionally (like every field) so the kind never shifts
    // later episodes' draws within a seed.
    ep.asym_inbound = rng.Uniform(2) == 1;
    plan.episodes.push_back(ep);
  }

  if (config.double_faults && config.members > 1) {
    // Second faults ride their own stream, drawn after the whole base
    // schedule: a seed's single-failure plan never shifts when this mode
    // turns on, so pq chaos failures bisect cleanly against single-parity
    // runs of the same seed.
    Rng second(seed ^ 0x64626c6632ull);
    constexpr FaultKind kSiteKinds[] = {
        FaultKind::kCrashRestart,
        FaultKind::kDisaster,
        FaultKind::kDiskFailure,
    };
    for (Episode& ep : plan.episodes) {
      const bool site_fault = ep.kind == FaultKind::kCrashRestart ||
                              ep.kind == FaultKind::kDisaster ||
                              ep.kind == FaultKind::kDiskFailure;
      // Every field is drawn unconditionally so one episode's eligibility
      // never shifts another's draws.
      const bool attach = second.Bernoulli(0.75);
      int m2 = static_cast<int>(
          second.Uniform(static_cast<uint64_t>(config.members - 1)));
      if (m2 >= ep.member) ++m2;  // any site but the first fault's target
      const FaultKind k2 = kSiteKinds[second.Uniform(std::size(kSiteKinds))];
      // Two shapes: overlapping windows (both sites dead at once, mid
      // traffic) or crash-during-recovery (the second strike lands after
      // the window, while the first fault's drain/sweep is running).
      const bool during_recovery = second.Bernoulli(0.4);
      const SimTime off2 =
          during_recovery
              ? ep.duration + second.UniformRange(0, ep.duration / 4)
              : second.UniformRange(ep.fault_offset, ep.duration);
      if (!site_fault || !attach) continue;
      ep.second_member = m2;
      ep.second_kind = k2;
      ep.second_offset = off2;
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = "plan[seed=" + std::to_string(seed) + "]";
  for (const Episode& ep : episodes) {
    out += " " + std::string(FaultKindName(ep.kind));
    if (ep.kind == FaultKind::kAsymPartition) {
      out += ep.asym_inbound ? "(in)" : "(out)";
    }
    out += "@m" + std::to_string(ep.member) + "/" +
           std::to_string(ToMillis(ep.duration)) + "ms";
    if (ep.second_member >= 0) {
      out += "+" + std::string(FaultKindName(ep.second_kind)) + "@m" +
             std::to_string(ep.second_member) +
             (ep.second_offset >= ep.duration ? "(recovery)" : "(overlap)");
    }
  }
  return out;
}

}  // namespace radd
