// LossyNetProxy — the fault-injecting proxy for the socket transport.
//
// SocketTransport consults a FrameInjector for every outbound frame; this
// is the standard implementation: a seeded, rate-configured adversary that
// delays, drops, duplicates, truncates and bit-flips frames. It plays the
// same role for the real-network backend that FaultPlan/FaultHook play for
// the DES — a reproducible source of network misbehavior that the
// robustness machinery (CRC rejection, reconnect + epoch fencing, bounded
// retransmit) must absorb without corrupting protocol state.
//
// Faults are drawn independently per frame from one seeded Rng, so a given
// (seed, rate) configuration produces the same fault verdicts for the same
// frame sequence. Note the *observed* schedule over real sockets is still
// nondeterministic (thread interleaving decides which sender draws next);
// determinism here means reproducible fault rates, not a reproducible trace —
// the differential tests therefore assert order-insensitive invariants
// (converged store hashes, ledger consistency), not traces.

#ifndef RADD_FAULT_NETSHIM_H_
#define RADD_FAULT_NETSHIM_H_

#include <cstdint>
#include <mutex>

#include "common/rng.h"
#include "net/socket_transport.h"

namespace radd {

/// Per-fault-class probabilities, each in [0, 1]. Mutually exclusive per
/// frame, tested in this order: drop, truncate, bitflip, duplicate (delay
/// is drawn independently and can combine with any verdict).
struct LossyProxyConfig {
  double drop_p = 0.0;
  double truncate_p = 0.0;
  double bitflip_p = 0.0;
  double duplicate_p = 0.0;
  /// Probability a frame is delayed at all; the delay is then uniform on
  /// [1, max_delay_ms].
  double delay_p = 0.0;
  int max_delay_ms = 5;
  uint64_t seed = 1;
};

/// A moderately hostile default mix for chaos sweeps: every fault class
/// enabled, loss-dominated, delays small enough to keep runs fast.
LossyProxyConfig DefaultLossyMix(uint64_t seed);

class LossyNetProxy : public FrameInjector {
 public:
  explicit LossyNetProxy(LossyProxyConfig cfg);

  FrameFaultPlan OnFrame(const Message& msg, size_t frame_len) override;

  // Verdicts issued (the transport separately counts verdicts *executed*).
  uint64_t planned_drops() const { return planned_drops_; }
  uint64_t planned_truncations() const { return planned_truncations_; }
  uint64_t planned_bitflips() const { return planned_bitflips_; }
  uint64_t planned_dups() const { return planned_dups_; }
  uint64_t planned_delays() const { return planned_delays_; }
  uint64_t frames_seen() const { return frames_seen_; }

 private:
  const LossyProxyConfig cfg_;
  std::mutex mu_;  // OnFrame is called concurrently from sender threads
  Rng rng_;
  uint64_t frames_seen_ = 0;
  uint64_t planned_drops_ = 0;
  uint64_t planned_truncations_ = 0;
  uint64_t planned_bitflips_ = 0;
  uint64_t planned_dups_ = 0;
  uint64_t planned_delays_ = 0;
};

}  // namespace radd

#endif  // RADD_FAULT_NETSHIM_H_
