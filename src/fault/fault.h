// Seeded fault scheduling for chaos testing.
//
// A FaultPlan is a deterministic script of fault *episodes* derived from a
// single seed: which fault class strikes, which group member it targets,
// when within the episode window it fires, and how severe it is. The plan
// also carries the background network-noise knobs (drop / duplicate /
// reorder-jitter probabilities) that stay on for the whole schedule.
//
// Episodes honour the paper's single-failure assumption *individually* —
// one fault class, one target per episode, with a quiesce-and-repair pass
// between episodes — while a full schedule still mixes every class. Every
// random choice flows from Rng(seed), so a failing schedule replays
// bit-for-bit from its printed seed.

#ifndef RADD_FAULT_FAULT_H_
#define RADD_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/block.h"
#include "sim/simulator.h"

namespace radd {

/// One fault class, injected once per episode.
enum class FaultKind {
  kCrashRestart,  ///< temporary outage: site down, disks intact
  kDisaster,      ///< site down, all disks lost on return
  kDiskFailure,   ///< one disk's blocks lost; site enters recovering
  kPartition,     ///< target isolated; majority presumes it down (§5)
  kLatentErrors,  ///< burst of unreadable sectors on one site
  kCorruption,    ///< silent bit rot on one site (checksum-detected)
  kGraySlow,      ///< gray failure: disk service time multiplied
  kDropWindow,    ///< window of heavy random message loss
  kAsymPartition, ///< one-way partition: target sends but cannot receive,
                  ///< or receives but cannot send (Episode::asym_inbound)
};

std::string_view FaultKindName(FaultKind k);

/// One scheduled fault: `kind` strikes `member` at `fault_offset` into the
/// episode's window of `duration`; the remaining fields parameterize the
/// kinds that need them.
struct Episode {
  FaultKind kind = FaultKind::kCrashRestart;
  int member = 0;            ///< targeted group member
  SimTime duration = 0;      ///< traffic window of the episode
  SimTime fault_offset = 0;  ///< injection time within the window
  int blocks = 0;            ///< latent/corruption: rows hit
  uint32_t slow_factor = 1;  ///< gray-slow disk multiplier
  double drop_p = 0.0;       ///< drop-window loss probability
  /// kAsymPartition direction: true = the member's *inbound* links are cut
  /// (it keeps sending, hears nothing back — peers still see it alive);
  /// false = its *outbound* links are cut (it hears everything, but its
  /// messages, heartbeats included, vanish — peers suspect and fence it).
  bool asym_inbound = false;

  /// Double-failure schedules (FaultPlanConfig::double_faults): a second,
  /// overlapping site fault. second_member < 0 means none. The second
  /// offset may exceed `duration`, which lands the fault *after* the
  /// traffic window — during the drain / recovery / background sweep of
  /// the first fault (the crash-during-recovery shape).
  int second_member = -1;
  FaultKind second_kind = FaultKind::kCrashRestart;
  SimTime second_offset = 0;
};

/// Knobs for FaultPlan::Random.
struct FaultPlanConfig {
  int members = 6;    ///< group members (G + 2) targets are drawn from
  int episodes = 5;   ///< episodes per schedule (min 2)
  BlockNum rows = 12; ///< physical rows per member (latent/corruption)
  SimTime min_duration = Seconds(3);
  SimTime max_duration = Seconds(8);
  /// Background noise active for the whole schedule.
  double drop_probability = 0.02;
  double duplicate_probability = 0.03;
  SimTime reorder_jitter = Millis(40);
  /// Double-failure mode (dual-parity schemes): site-killing episodes gain
  /// a second overlapping crash/disaster/disk-failure on a different site.
  /// Drawn from a separate RNG stream *after* the base schedule, so a
  /// seed's single-failure plan is bit-identical with this off or on.
  bool double_faults = false;
};

/// A full seeded schedule.
struct FaultPlan {
  uint64_t seed = 0;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  SimTime reorder_jitter = 0;
  std::vector<Episode> episodes;

  /// Derives a schedule from `seed`. Every schedule is guaranteed to
  /// contain at least one crash-restart and one latent-error episode (the
  /// acceptance floor for chaos coverage); the rest are drawn uniformly
  /// over all kinds, and the order is shuffled.
  static FaultPlan Random(uint64_t seed, const FaultPlanConfig& config);

  std::string ToString() const;
};

}  // namespace radd

#endif  // RADD_FAULT_FAULT_H_
