#include "fault/chaos.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/volume.h"
#include "net/transport.h"

namespace radd {

std::string ChaosReport::Summary() const {
  std::string out = "seed=" + std::to_string(seed) +
                    " ok=" + (ok ? std::string("1") : std::string("0")) +
                    " issued=" + std::to_string(ops_issued) +
                    " acked=" + std::to_string(ops_acked) +
                    " failed=" + std::to_string(ops_failed) +
                    " reads=" + std::to_string(reads_validated) +
                    " t=" + std::to_string(end_time) + " " + plan;
  if (groups > 1) out += " groups=" + std::to_string(groups);
  if (parities > 1) out += " scheme=pq";
  if (declustered) out += " layout=declustered sites=" + std::to_string(sites);
  if (expanded) {
    out += " moved=" + std::to_string(expansion_moves) +
           " planned=" + std::to_string(expansion_planned);
  }
  if (batched) {
    out += " batches=" + std::to_string(batches_sent) +
           " batch_retx=" + std::to_string(batch_retransmits) +
           " batch_dup=" + std::to_string(batch_duplicates) +
           " staged=" + std::to_string(parity_staged);
  }
  if (autopilot) {
    out += " conv_max=" + std::to_string(convergence_max) +
           " conv_total=" + std::to_string(convergence_total) +
           " sweep_rows=" + std::to_string(sweep_rows) +
           " false_susp=" + std::to_string(false_suspicions) +
           " stale_epoch=" + std::to_string(stale_epoch_rejections);
  }
  if (!failure.empty()) out += " FAILURE: " + failure;
  return out;
}

ChaosHarness::ChaosHarness(const ChaosConfig& config) : config_(config) {}

ChaosReport ChaosHarness::Run(uint64_t seed) {
  ChaosConfig cfg = config_;
  PlacementSpec pspec;
  pspec.kind = cfg.layout;
  pspec.sites = cfg.sites;
  const bool declustered = cfg.layout == PlacementKind::kDeclustered;
  // Members per group: the rotated G + 1 + parities, or the declustered
  // cluster width C.
  const int members =
      PlacementGroupWidth(pspec, cfg.group_size, cfg.parities);
  // §4 volume shape: `groups` * width logical drives spread round-robin
  // over width-1+groups sites. groups == 1 degenerates to the classic one
  // drive per site on `width` sites, which the assigner maps to the
  // identity group — every address, RNG draw and site id matches the
  // pre-volume harness exactly.
  const int num_sites =
      cfg.groups == 1 ? members : members - 1 + cfg.groups;
  // Expansion mode reserves one extra cluster site, initially empty; the
  // mid-schedule expansion carves one drive per group out of it.
  const bool expand = cfg.expand && declustered && cfg.parities == 1;
  const int total_sites = num_sites + (expand ? 1 : 0);
  const SiteId expand_site = static_cast<SiteId>(num_sites);
  std::vector<int> drives_per_site(static_cast<size_t>(num_sites), 0);
  for (int d = 0; d < cfg.groups * members; ++d) {
    ++drives_per_site[static_cast<size_t>(d % num_sites)];
  }
  cfg.plan.members = num_sites;  // faults target sites, not group members
  cfg.plan.rows = cfg.rows;
  FaultPlan plan = FaultPlan::Random(seed, cfg.plan);

  ChaosReport report;
  report.seed = seed;
  report.groups = cfg.groups;
  report.parities = cfg.parities;
  report.declustered = declustered;
  if (declustered) report.sites = members;
  report.plan = plan.ToString();

  Simulator sim;
  NetworkModel nm;
  nm.drop_probability = plan.drop_probability;
  nm.duplicate_probability = plan.duplicate_probability;
  nm.reorder_jitter = plan.reorder_jitter;
  // Declared before `net` so the fault hooks below (which capture it)
  // outlive every send.
  Rng batch_faults(seed ^ 0x62617463ull);
  Network net(&sim, nm, seed ^ 0x6e657477ull);
  if (cfg.node.parity_batch.enabled) {
    // Batched frames and their acks get extra targeted abuse on top of the
    // plan's background noise: the batch seq-dedupe and per-entry retry
    // paths must hold under drop, duplication and the reordering the
    // random jitter already provides.
    net.SetFaultHook(MessageType::kParityBatch,
                     [&batch_faults](const Message&) {
                       const double d = batch_faults.NextDouble();
                       if (d < 0.02) return FaultAction::kDrop;
                       if (d < 0.05) return FaultAction::kDuplicate;
                       return FaultAction::kDeliver;
                     });
    net.SetFaultHook(MessageType::kParityBatchAck,
                     [&batch_faults](const Message&) {
                       const double d = batch_faults.NextDouble();
                       if (d < 0.02) return FaultAction::kDrop;
                       if (d < 0.05) return FaultAction::kDuplicate;
                       return FaultAction::kDeliver;
                     });
  }
  std::vector<SiteConfig> site_configs;
  site_configs.reserve(static_cast<size_t>(total_sites));
  for (int s = 0; s < total_sites; ++s) {
    SiteConfig sc;
    sc.num_disks = 1;
    // The expansion site starts empty of volume drives but must hold one
    // drive per group once the expansion lands.
    sc.blocks_per_disk =
        s < num_sites
            ? static_cast<BlockNum>(
                  drives_per_site[static_cast<size_t>(s)]) *
                  cfg.rows
            : static_cast<BlockNum>(cfg.groups) * cfg.rows;
    sc.block_size = cfg.block_size;
    site_configs.push_back(sc);
  }
  Cluster cluster(site_configs);
  VolumeConfig vc;
  vc.group.group_size = cfg.group_size;
  vc.group.parities = cfg.parities;
  vc.group.placement = pspec;
  vc.group.rows = cfg.rows;
  vc.group.block_size = cfg.block_size;
  vc.drives_per_site = drives_per_site;
  vc.node = cfg.node;
  Result<std::unique_ptr<RaddVolume>> made =
      RaddVolume::Create(&sim, &net, &cluster, vc);
  if (!made.ok()) {
    report.failure = "volume: " + made.status().ToString();
    return report;
  }
  RaddVolume& vol = **made;
  RaddNodeSystem& sys = *vol.system();

  // Frame-codec mode: every protocol send serializes to a packed frame and
  // decodes back before entering the Network. Lossless, so the Summary
  // must not change; the counters prove every message survived the trip.
  std::optional<DesTransport> transport;
  if (cfg.frame_codec) {
    report.frame_codec = true;
    transport.emplace(&net);
    sys.SetTransport(&*transport);
  }

  // --- autopilot control plane ---------------------------------------------
  // Detector constructed after `sys` so it chains in front of the protocol
  // handlers; suspicions feed the status service, which owns all state
  // transitions; a kDown declaration resets the node like a real crash
  // would; the sweeper follows kRecovering transitions and repairs in the
  // background, throttled by the foreground in-flight op count.
  std::optional<SiteStatusService> service;
  std::optional<HeartbeatDetector> detector;
  std::optional<RecoverySweeper> sweeper;
  if (cfg.autopilot) {
    report.autopilot = true;
    service.emplace(&sim, &cluster);
    std::vector<SiteId> sites;
    for (int s = 0; s < total_sites; ++s) {
      sites.push_back(static_cast<SiteId>(s));
    }
    detector.emplace(&sim, &net, &cluster, sites, cfg.heartbeat);
    detector->SetStatusService(&*service);
    sys.SetStatusService(&*service);
    sys.SetPerceiver([&](SiteId observer, SiteId target) {
      return detector->Perceived(observer, target);
    });
    service->AddListener([&](SiteId site, SiteState state, uint64_t) {
      if (state == SiteState::kDown) sys.ResetNodeVolatileState(site);
    });
    SweeperConfig sw = cfg.sweeper;
    sw.load_probe = [&]() { return sys.InFlightOps(); };
    if (cfg.node.disk_sched.modeled() && !sw.disk_charge) {
      // Modeled disk subsystem: pace the sweep by the recovering site's
      // own queues (recovery class) instead of the wall-clock tick gap.
      sw.disk_charge = [&sys](SiteId site, uint32_t units,
                              std::function<void()> done) {
        sys.ChargeBackgroundIo(site, units, std::move(done));
      };
    }
    std::vector<RaddGroup*> sweep_groups;
    for (int g = 0; g < vol.num_groups(); ++g) {
      sweep_groups.push_back(vol.group(g));
    }
    sweeper.emplace(&sim, std::move(sweep_groups), &*service, sw);
    sweeper->Start();
    detector->Start();
  }

  Rng traffic(seed ^ 0x74726166ull);
  const uint64_t zero_ck = Block(cfg.block_size).Checksum();

  // --- acknowledged-write ledger -------------------------------------------
  // Per logical block: the set of content checksums the block may legally
  // hold. An acknowledged write collapses the set to its value; a *failed*
  // write (the client saw an error, but the data may still have landed)
  // adds its value instead. At most one write per block is in flight, so
  // the set is exact.
  struct BlockState {
    std::set<uint64_t> allowed;
    std::optional<uint64_t> outstanding;
    bool written = false;  // ever acknowledged
  };
  // Keyed by volume address: (site, site-local lba).
  std::map<std::pair<int, BlockNum>, BlockState> ledger;
  auto state_of = [&](int home, BlockNum idx) -> BlockState& {
    auto [it, fresh] = ledger.try_emplace({home, idx});
    if (fresh) it->second.allowed.insert(zero_ck);
    return it->second;
  };

  uint64_t outstanding = 0;
  auto trace = [&](const std::string& what) {
    if (!cfg.verbose) return;
    std::fprintf(stderr, "[%12" PRIu64 "] %s\n",
                 static_cast<uint64_t>(sim.Now()), what.c_str());
  };
  std::string failure;
  auto fail = [&](const std::string& what) {
    if (failure.empty()) failure = what;
  };
  auto block_name = [](int home, BlockNum idx) {
    return "m" + std::to_string(home) + "/b" + std::to_string(idx);
  };

  int minority_member = -1;  // site isolated by a partition, else -1

  // --- online expansion (expand mode) --------------------------------------
  // Mid-schedule, the reserved extra site joins every group. Autopilot:
  // the sweeper paces the block moves alongside its recovery duty and the
  // convergence gate waits for the commit. Manual: a pump applies moves
  // during the episode window (contending with the fault and traffic) and
  // the remainder drains after repair.
  bool expansion_started = false;
  bool expansion_checked = false;
  int expansions_pending = 0;  // groups still migrating (autopilot)
  std::vector<int> pre_widths;  // members per group before the expansion
  auto start_expansion = [&]() {
    expansion_started = true;
    trace("expansion: site " + std::to_string(expand_site) + " joins");
    for (int g = 0; g < vol.num_groups(); ++g) {
      pre_widths.push_back(vol.group(g)->num_members());
      Status st = vol.AddDrive(g, expand_site,
                               static_cast<BlockNum>(g) * cfg.rows, cfg.rows);
      if (!st.ok()) {
        fail("expansion of group " + std::to_string(g) + ": " +
             st.ToString());
        return;
      }
      if (sweeper) {
        ++expansions_pending;
        sweeper->StartMigration(g, [&]() { --expansions_pending; });
      }
    }
  };
  std::function<void(SimTime)> pump_migration = [&](SimTime until) {
    if (sim.Now() >= until) return;  // the post-repair drain finishes it
    bool any = false;
    for (int g = 0; g < vol.num_groups(); ++g) {
      if (!vol.group(g)->ExpansionPending()) continue;
      any = true;
      (void)vol.group(g)->MigrateStep(2);
    }
    if (!any) return;
    sim.At(sim.Now() + Millis(5), [&, until]() { pump_migration(until); });
  };
  auto drain_migration = [&]() {
    for (int g = 0; g < vol.num_groups(); ++g) {
      int idle = 0;
      bool scrubbed = false;
      while (vol.group(g)->ExpansionPending() && failure.empty()) {
        Result<int> r = vol.group(g)->MigrateStep(64);
        if (!r.ok()) {
          fail("expansion drain of group " + std::to_string(g) + ": " +
               r.status().ToString());
          return;
        }
        if (*r > 0) {
          idle = 0;
          continue;
        }
        // With every site restored a pass that applies nothing means the
        // remaining moves are blocked on damaged blocks (the fault's
        // leftovers). One scrub pass restores readability; a stall after
        // that is permanent.
        if (++idle > 3) {
          if (!scrubbed) {
            scrubbed = true;
            idle = 0;
            for (int m = 0; m < vol.group(g)->num_members(); ++m) {
              (void)vol.group(g)->ScrubData(m);
              (void)vol.group(g)->ScrubParity(m);
            }
            continue;
          }
          fail("expansion drain stalled in group " + std::to_string(g));
          return;
        }
      }
    }
  };
  auto verify_expansion = [&]() {
    if (!expansion_started || expansion_checked || !failure.empty()) return;
    for (int g = 0; g < vol.num_groups(); ++g) {
      if (vol.group(g)->ExpansionPending()) return;  // still migrating
    }
    expansion_checked = true;
    for (int g = 0; g < vol.num_groups(); ++g) {
      RaddGroup* grp = vol.group(g);
      const uint64_t n =
          static_cast<uint64_t>(grp->layout().stripe_width());
      const uint64_t rounds = static_cast<uint64_t>(cfg.rows) / n;
      const uint64_t planned = grp->ExpansionMovesPlanned();
      const uint64_t moved = grp->ExpansionMovesDone();
      if (planned != rounds * (n - 1)) {
        fail("expansion plan of group " + std::to_string(g) + " has " +
             std::to_string(planned) + " moves, expected rounds*(n-1) = " +
             std::to_string(rounds * (n - 1)));
        return;
      }
      if (moved != planned) {
        fail("expansion of group " + std::to_string(g) + " moved " +
             std::to_string(moved) + " of " + std::to_string(planned) +
             " planned blocks");
        return;
      }
      // Bounded movement: at most the added capacity share 1/(C+1) of the
      // C*rounds*n physical blocks in use may relocate.
      const uint64_t c0 = static_cast<uint64_t>(pre_widths[g]);
      const uint64_t used = c0 * rounds * n;
      if (moved * (c0 + 1) > used) {
        fail("expansion of group " + std::to_string(g) + " moved " +
             std::to_string(moved) + " blocks, above the capacity share " +
             std::to_string(used) + "/" + std::to_string(c0 + 1));
        return;
      }
      report.expansion_moves += moved;
      report.expansion_planned += planned;
    }
    report.expanded = true;
  };

  auto pick_client = [&]() -> std::optional<SiteId> {
    // §5: during a partition only the majority side may accept work.
    std::vector<SiteId> usable;
    for (int m = 0; m < num_sites; ++m) {
      if (m == minority_member) continue;
      SiteId s = static_cast<SiteId>(m);
      if (cluster.StateOf(s) == SiteState::kDown) continue;
      usable.push_back(s);
    }
    if (usable.empty()) return std::nullopt;
    return usable[traffic.Uniform(usable.size())];
  };

  auto issue_write = [&](int home, BlockNum idx) {
    std::optional<SiteId> client = pick_client();
    if (!client) return;
    BlockState& bs = state_of(home, idx);
    if (bs.outstanding) return;  // one writer per block keeps the set exact
    Block data(cfg.block_size);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(traffic.Next());
    }
    const uint64_t ck = data.Checksum();
    bs.outstanding = ck;
    ++report.ops_issued;
    ++outstanding;
    trace("write " + block_name(home, idx) + " ck=" + std::to_string(ck) +
          " from s" + std::to_string(*client));
    vol.AsyncWrite(*client, static_cast<SiteId>(home), idx, std::move(data),
                   [&, home, idx, ck](Status st, SimTime) {
                     --outstanding;
                     trace("write " + block_name(home, idx) +
                           " ck=" + std::to_string(ck) + " -> " +
                           st.ToString());
                     BlockState& b = state_of(home, idx);
                     b.outstanding.reset();
                     if (st.ok()) {
                       b.allowed.clear();
                       b.allowed.insert(ck);
                       b.written = true;
                       ++report.ops_acked;
                     } else {
                       b.allowed.insert(ck);  // may or may not have landed
                       ++report.ops_failed;
                     }
                   });
  };

  auto issue_read = [&](int home, BlockNum idx) {
    std::optional<SiteId> client = pick_client();
    if (!client) return;
    BlockState& bs = state_of(home, idx);
    std::set<uint64_t> snapshot = bs.allowed;  // legal values at issue time
    if (bs.outstanding) snapshot.insert(*bs.outstanding);
    ++report.ops_issued;
    ++outstanding;
    trace("read " + block_name(home, idx) + " from s" +
          std::to_string(*client));
    vol.AsyncRead(
        *client, static_cast<SiteId>(home), idx,
        [&, home, idx, snapshot = std::move(snapshot)](
            Status st, const Block& data, SimTime) {
          --outstanding;
          trace("read " + block_name(home, idx) + " -> " +
                (st.ok() ? "ck=" + std::to_string(data.Checksum())
                         : st.ToString()));
          if (!st.ok()) {
            ++report.ops_failed;  // reads may legitimately time out
            return;
          }
          ++report.ops_acked;
          const uint64_t ck = data.Checksum();
          BlockState& b = state_of(home, idx);
          const bool legal = snapshot.count(ck) > 0 ||
                             b.allowed.count(ck) > 0 ||
                             (b.outstanding && *b.outstanding == ck);
          if (legal) {
            ++report.reads_validated;
          } else {
            fail("read of " + block_name(home, idx) +
                 " returned a value no write produced (torn or stale)");
          }
        });
  };

  auto repair_and_check = [&]() {
    // Scrub data first (restores readability of latent/corrupt blocks),
    // then parity (recomputes rows whose updates were dropped) — every
    // group of the volume, in group order.
    for (int g = 0; g < vol.num_groups() && failure.empty(); ++g) {
      const int width_now = vol.group(g)->num_members();
      for (int m = 0; m < width_now && failure.empty(); ++m) {
        Result<int> r = vol.group(g)->ScrubData(m);
        if (!r.ok()) fail("ScrubData(g" + std::to_string(g) + "/m" +
                          std::to_string(m) + "): " + r.status().ToString());
      }
    }
    for (int g = 0; g < vol.num_groups() && failure.empty(); ++g) {
      const int width_now = vol.group(g)->num_members();
      for (int m = 0; m < width_now && failure.empty(); ++m) {
        Result<int> r = vol.group(g)->ScrubParity(m);
        if (!r.ok()) fail("ScrubParity(g" + std::to_string(g) + "/m" +
                          std::to_string(m) + "): " + r.status().ToString());
      }
    }
    if (!failure.empty()) return;
    Status inv = vol.VerifyInvariants();
    if (!inv.ok()) {
      fail("invariants: " + inv.ToString());
      return;
    }
    // Zero acknowledged-write loss: every block reads back as a value the
    // ledger allows. Readback uses the synchronous reference model of the
    // owning group, addressed through the volume map.
    for (auto& [key, bs] : ledger) {
      const SiteId site = static_cast<SiteId>(key.first);
      Result<RaddVolume::Target> t = vol.Resolve(site, key.second);
      if (!t.ok()) {
        fail("resolve of " + block_name(key.first, key.second) + " failed");
        return;
      }
      OpResult r = vol.group(t->group)->Read(site, t->member, t->index);
      if (!r.ok()) {
        fail("readback of " + block_name(key.first, key.second) +
             " failed: " + r.status.ToString());
        return;
      }
      if (bs.allowed.count(r.data.Checksum()) == 0) {
        if (cfg.verbose) {
          std::string allowed;
          for (uint64_t a : bs.allowed) allowed += " " + std::to_string(a);
          trace("readback " + block_name(key.first, key.second) + " (g" +
                std::to_string(t->group) + "/m" + std::to_string(t->member) +
                "/i" + std::to_string(t->index) + ") ck=" +
                std::to_string(r.data.Checksum()) + " allowed:" + allowed);
        }
        fail((bs.written ? "acknowledged write lost at "
                         : "phantom value at ") +
             block_name(key.first, key.second));
        return;
      }
    }
  };

  const int expand_at = static_cast<int>(plan.episodes.size()) / 2;
  int ep_index = -1;
  for (const Episode& ep : plan.episodes) {
    ++ep_index;
    if (!failure.empty()) break;
    const SimTime t0 = sim.Now();
    const SiteId target = static_cast<SiteId>(ep.member);
    if (expand && ep_index == expand_at) {
      // The expansion launches at the window's start, so its block moves
      // run under this episode's fault and live traffic.
      sim.At(t0, [&, window_end = t0 + ep.duration]() {
        start_expansion();
        if (!sweeper && failure.empty()) pump_migration(window_end);
      });
    }
    trace("=== episode " + std::string(FaultKindName(ep.kind)) + "@m" +
          std::to_string(ep.member) + " duration=" +
          std::to_string(ep.duration) + " offset=" +
          std::to_string(ep.fault_offset));
    ++report.injected_by_kind[std::string(FaultKindName(ep.kind))];
    if (ep.second_member >= 0) {
      ++report.injected_by_kind[std::string(FaultKindName(ep.second_kind))];
    }

    // The fault strikes mid-window, landing on in-flight operations
    // (including writes between W1 and the parity ack).
    sim.At(t0 + ep.fault_offset, [&, ep, target]() {
      trace("fault strikes: " + std::string(FaultKindName(ep.kind)) + "@m" +
            std::to_string(ep.member));
      switch (ep.kind) {
        case FaultKind::kCrashRestart:
          if (cfg.autopilot) {
            // The kDown listener resets the node's volatile state.
            (void)service->InjectCrash(target);
          } else {
            (void)cluster.CrashSite(target);
            sys.ResetNodeVolatileState(target);
          }
          break;
        case FaultKind::kDisaster:
          if (cfg.autopilot) {
            (void)service->InjectDisaster(target);
          } else {
            (void)cluster.DisasterSite(target);
            sys.ResetNodeVolatileState(target);
          }
          break;
        case FaultKind::kDiskFailure:
          if (cfg.autopilot) {
            // kRecovering transition; the sweeper starts reconstructing.
            (void)service->InjectDiskFailure(target, 0);
          } else {
            (void)cluster.FailDisk(target, 0);
          }
          break;
        case FaultKind::kPartition: {
          // The majority side is every site but the target — including the
          // reserved expansion site (a site in neither partition group
          // would be cut off from everyone).
          std::vector<SiteId> rest;
          for (int m = 0; m < total_sites; ++m) {
            if (m != ep.member) rest.push_back(static_cast<SiteId>(m));
          }
          net.SetPartitions({{target}, rest});
          minority_member = ep.member;
          if (!cfg.autopilot) {
            for (SiteId o : rest) {
              sys.SetPresumedState(o, target, SiteState::kDown);
              sys.SetPresumedState(target, o, SiteState::kDown);
            }
          }
          // Autopilot: no oracle. The majority side's detectors notice the
          // silence, the service fences the isolated site (majority rule),
          // and the minority side — one suspicion among many peers — can
          // never muster a declaration (§5).
          break;
        }
        case FaultKind::kLatentErrors: {
          const BlockNum span = cluster.site(target)->store()->total_blocks();
          for (int i = 0; i < ep.blocks; ++i) {
            (void)cluster.site(target)->disks()->InjectLatentError(
                traffic.Uniform(span));
          }
          break;
        }
        case FaultKind::kCorruption: {
          const BlockNum span = cluster.site(target)->store()->total_blocks();
          for (int i = 0; i < ep.blocks; ++i) {
            (void)cluster.site(target)->disks()->CorruptBlock(
                traffic.Uniform(span), traffic.Next(),
                1 + static_cast<int>(traffic.Uniform(3)));
          }
          break;
        }
        case FaultKind::kGraySlow:
          sys.SetDiskSlowFactor(target, ep.slow_factor);
          break;
        case FaultKind::kDropWindow:
          net.set_drop_probability(ep.drop_p);
          break;
        case FaultKind::kAsymPartition:
          // One direction of the target's links goes dark. Inbound-cut: it
          // keeps heartbeating, so nobody suspects it — its own operations
          // just never hear replies and must fail cleanly. Outbound-cut:
          // its heartbeats vanish, the majority suspects, declares it down
          // and fences it (§5) while it still hears everything.
          net.SetAsymBlock(target, ep.asym_inbound, !ep.asym_inbound);
          minority_member = ep.member;
          if (!cfg.autopilot) {
            // Majority-side oracle only. Unlike a symmetric partition, the
            // target must NOT presume the majority down: §5 says a minority
            // site considers itself cut off, not the world. If it presumed
            // its peers down it would take degraded shortcuts (ack a write
            // data-only because "the parity site is down") — and with one
            // working direction such unsound acks can escape to clients
            // whose readers then reconstruct through stale parity. Left
            // believing its peers are up, its operations instead fail
            // honestly via retransmit exhaustion.
            for (int m = 0; m < total_sites; ++m) {
              if (m == ep.member) continue;
              sys.SetPresumedState(static_cast<SiteId>(m), target,
                                   SiteState::kDown);
            }
          }
          break;
      }
    });

    // Double-failure schedules (dual-parity mode): the second strike lands
    // on a different site, either inside the window (two overlapping
    // outages under live traffic) or after it (crash-during-recovery: the
    // first fault's drain / sweep is running when the second site dies).
    if (ep.second_member >= 0) {
      const SiteId target2 = static_cast<SiteId>(ep.second_member);
      sim.At(t0 + ep.second_offset, [&, ep, target2]() {
        trace("second fault strikes: " +
              std::string(FaultKindName(ep.second_kind)) + "@m" +
              std::to_string(ep.second_member));
        switch (ep.second_kind) {
          case FaultKind::kCrashRestart:
            if (cfg.autopilot) {
              (void)service->InjectCrash(target2);
            } else {
              (void)cluster.CrashSite(target2);
              sys.ResetNodeVolatileState(target2);
            }
            break;
          case FaultKind::kDisaster:
            if (cfg.autopilot) {
              (void)service->InjectDisaster(target2);
            } else {
              (void)cluster.DisasterSite(target2);
              sys.ResetNodeVolatileState(target2);
            }
            break;
          case FaultKind::kDiskFailure:
            if (cfg.autopilot) {
              (void)service->InjectDiskFailure(target2, 0);
            } else {
              (void)cluster.FailDisk(target2, 0);
            }
            break;
          default:
            break;
        }
        if (cfg.autopilot && (ep.second_kind == FaultKind::kCrashRestart ||
                              ep.second_kind == FaultKind::kDisaster)) {
          // The second site reboots on its own schedule, independent of
          // the primary's window-end restart. (NotifyRestart no-ops if the
          // service already rejoined it.)
          sim.At(sim.Now() + cfg.restart_delay, [&, target2]() {
            trace("restart s" + std::to_string(target2));
            (void)service->NotifyRestart(target2);
          });
        }
      });
    }

    // Client traffic throughout the window.
    for (int i = 0; i < cfg.ops_per_episode; ++i) {
      const SimTime when = t0 + traffic.Uniform(ep.duration);
      const bool is_write = traffic.Bernoulli(0.6);
      const int home = static_cast<int>(
          traffic.Uniform(static_cast<uint64_t>(num_sites)));
      const BlockNum idx = traffic.Uniform(
          vol.DataBlocksAtSite(static_cast<SiteId>(home)));
      sim.At(when, [&, is_write, home, idx]() {
        if (is_write) {
          issue_write(home, idx);
        } else {
          issue_read(home, idx);
        }
      });
    }
    sim.RunUntil(t0 + ep.duration);

    // Lift the fault. A healed partition is a rejoin: the isolated site
    // missed updates and must run recovery like a restarted site (§5).
    switch (ep.kind) {
      case FaultKind::kAsymPartition:
      case FaultKind::kPartition:
        if (ep.kind == FaultKind::kAsymPartition) {
          net.ClearAsymBlock(target);
        } else {
          net.Heal();
        }
        minority_member = -1;
        if (cfg.autopilot) {
          // The fenced site's heartbeats get through again; peers clear
          // their suspicion, the service rejoins it as recovering, and the
          // sweeper drains whatever it missed. Nothing to do here.
          break;
        }
        // Clear over every site the strike's loops could have touched —
        // total_sites, matching the partition's majority set, or a pair
        // involving the expansion site would stay presumed-down forever.
        for (int m = 0; m < total_sites; ++m) {
          SiteId o = static_cast<SiteId>(m);
          sys.SetPresumedState(o, target, std::nullopt);
          sys.SetPresumedState(target, o, std::nullopt);
        }
        (void)cluster.CrashSite(target);
        sys.ResetNodeVolatileState(target);
        break;
      case FaultKind::kGraySlow:
        sys.SetDiskSlowFactor(target, 1);
        break;
      case FaultKind::kDropWindow:
        net.set_drop_probability(plan.drop_probability);
        break;
      default:
        break;
    }

    if (cfg.autopilot) {
      // A crashed or disaster-struck process reboots a moment later and
      // announces itself; everything after that — recovering state, paced
      // sweep, mark-up — is the control plane's job. (NotifyRestart no-ops
      // if the service already rejoined the site, e.g. a healed fence.)
      if (ep.kind == FaultKind::kCrashRestart ||
          ep.kind == FaultKind::kDisaster) {
        sim.At(sim.Now() + cfg.restart_delay, [&, target]() {
          trace("restart s" + std::to_string(target));
          (void)service->NotifyRestart(target);
        });
      }
      // A crash-during-recovery second fault lands after the window; make
      // sure it has actually fired before judging convergence, or a fast
      // settle would leak the strike into the next episode.
      if (ep.second_member >= 0 && ep.second_offset > ep.duration) {
        sim.RunUntil(std::max(sim.Now(), t0 + ep.second_offset));
      }
      // Convergence: run until every site is kUp and all traffic has
      // drained, within the sim-time budget. sim.Run() would never return
      // here (heartbeats reschedule forever), so run in slices and check.
      // A momentary all-up view can still flap (a declaration in flight),
      // so convergence only counts if it survives a settle window.
      const SimTime drain_start = sim.Now();
      const SimTime budget_end = drain_start + cfg.convergence_budget;
      auto settled = [&]() {
        return service->Converged() && outstanding == 0 && sys.Quiescent() &&
               expansions_pending == 0;
      };
      bool converged = false;
      while (sim.Now() < budget_end) {
        sim.RunUntil(std::min<SimTime>(budget_end, sim.Now() + Millis(100)));
        if (!settled()) continue;
        sim.RunUntil(std::min<SimTime>(budget_end, sim.Now() + Millis(300)));
        if (settled()) {
          converged = true;
          break;
        }
      }
      if (!converged) {
        fail("episode " + std::string(FaultKindName(ep.kind)) + "@m" +
             std::to_string(ep.member) + " did not converge within " +
             std::to_string(cfg.convergence_budget) + "us (all_up=" +
             (service->Converged() ? "y" : "n") + " outstanding=" +
             std::to_string(outstanding) + " quiescent=" +
             (sys.Quiescent() ? "y" : "n") + ")");
        break;
      }
      const SimTime took = sim.Now() - drain_start;
      report.convergence_total += took;
      if (took > report.convergence_max) report.convergence_max = took;
    } else {
      // Quiesce: exhaust the event queue — client ops, in-flight messages,
      // queued disk I/O and retransmission timers. Client-level draining
      // alone is not enough: a parity apply can still sit in a disk queue
      // after its write's client gave up, and scrubbing before it lands
      // would let it corrupt the freshly recomputed parity. This
      // terminates even under residual noise because every retransmission
      // path gives up after max_retries instead of spinning forever.
      sim.Run();
    }
    if (outstanding != 0) {
      fail(std::to_string(outstanding) + " operations hung after drain");
      break;
    }

    // Repair. In autopilot the control plane has already restored and
    // swept the target; only the manual mode does it here.
    if (!cfg.autopilot) {
      // Every group hosting a drive of the failed site runs its own sweep;
      // the site is marked up by the last one (§4, RaddGroup::RunRecovery's
      // mark_up contract).
      auto recover_site = [&](SiteId s) {
        std::vector<std::pair<int, int>> slices;  // (group, member)
        for (int g = 0; g < vol.num_groups(); ++g) {
          const int m = vol.group(g)->MemberAtSite(s);
          if (m >= 0) slices.push_back({g, m});
        }
        for (size_t i = 0; i < slices.size(); ++i) {
          const bool last = i + 1 == slices.size();
          Result<OpCounts> r =
              vol.group(slices[i].first)->RunRecovery(slices[i].second, last);
          if (!r.ok()) {
            fail("recovery: " + r.status().ToString());
            return;
          }
        }
      };
      switch (ep.kind) {
        case FaultKind::kCrashRestart:
        case FaultKind::kDisaster:
        case FaultKind::kPartition:
        case FaultKind::kAsymPartition:
          (void)cluster.RestoreSite(target);
          recover_site(target);
          break;
        case FaultKind::kDiskFailure:
          recover_site(target);
          break;
        default:
          break;
      }
      // The double-failure episode's second site is repaired *after* the
      // primary, so the primary's sweep itself runs with two erasures
      // outstanding when the windows overlap — exactly the case the P+Q
      // decode must carry.
      if (ep.second_member >= 0 && failure.empty()) {
        const SiteId target2 = static_cast<SiteId>(ep.second_member);
        switch (ep.second_kind) {
          case FaultKind::kCrashRestart:
          case FaultKind::kDisaster:
            (void)cluster.RestoreSite(target2);
            recover_site(target2);
            break;
          case FaultKind::kDiskFailure:
            recover_site(target2);
            break;
          default:
            break;
        }
      }
    }
    if (!cfg.autopilot && expansion_started && failure.empty()) {
      // Whatever the window's pump could not land (moves blocked by the
      // fault) completes now that every site is restored.
      drain_migration();
    }
    if (!failure.empty()) break;
    trace("repair + invariant check");
    repair_and_check();
    verify_expansion();
    if (failure.empty()) {
      ++report.survived_by_kind[std::string(FaultKindName(ep.kind))];
      if (ep.second_member >= 0) {
        ++report.survived_by_kind[std::string(FaultKindName(ep.second_kind))];
      }
    }
  }

  if (expansion_started && !expansion_checked && failure.empty()) {
    fail("expansion never completed: " +
         std::to_string(expansions_pending) + " groups still migrating");
  }

  if (detector) detector->Stop();
  if (transport) {
    report.frames_encoded = transport->frame_counters().encoded.load();
    report.frames_rejected = transport->frame_counters().Rejected();
  }
  if (cfg.node.parity_batch.enabled) {
    report.batched = true;
    report.batches_sent = sys.stats().Get("node.batches_sent");
    report.batch_retransmits = sys.stats().Get("node.batch_retransmit");
    report.batch_duplicates = sys.stats().Get("node.batch_duplicate");
    report.parity_staged = sys.stats().Get("node.parity_staged");
  }
  if (cfg.autopilot) {
    report.false_suspicions = detector->false_suspicions();
    report.stale_epoch_rejections =
        sys.stats().Get("node.stale_epoch_rejected");
    report.sweep_rows = sweeper->stats().Get("sweeper.rows_swept");
  }
  report.end_time = sim.Now();
  report.failure = failure;
  report.ok = failure.empty();
  return report;
}

}  // namespace radd
