// ChaosHarness — randomized fault schedules against the full protocol
// stack, with invariant checking and an acknowledged-write ledger.
//
// One Run(seed) builds a fresh simulated cluster, derives a FaultPlan from
// the seed, and drives it episode by episode: client traffic flows while
// background network noise (drop / duplicate / reorder) is always on, the
// episode's fault strikes mid-window, then the harness quiesces (drains
// every in-flight operation), repairs (restore + recovery sweep + data and
// parity scrubs) and checks:
//
//   * RaddGroup::VerifyInvariants() — parity == XOR of each row, UID-array
//     agreement, spare validity;
//   * zero acknowledged-write loss — every block whose write was
//     acknowledged reads back as a value the ledger allows (the committed
//     value, or a value a *failed* write may or may not have applied);
//   * no hung operations — every issued op completed with some status
//     (the §5 retransmit-until-ack path must terminate).
//
// Everything is seeded, so a failing seed replays bit-for-bit; Run twice
// with the same seed produces byte-identical reports.

#ifndef RADD_FAULT_CHAOS_H_
#define RADD_FAULT_CHAOS_H_

#include <cstdint>
#include <map>
#include <string>

#include "cluster/heartbeat.h"
#include "core/node.h"
#include "core/sweeper.h"
#include "fault/fault.h"
#include "layout/placement.h"

namespace radd {

/// Shape of the cluster and traffic one chaos schedule runs against.
struct ChaosConfig {
  int group_size = 4;  ///< G; each group has G + 1 + parities members
  /// Parity legs per row: 1 = the paper's single parity, 2 = the P+Q
  /// Reed-Solomon scheme (two-erasure tolerant). Groups grow to G+3
  /// members; combine with FaultPlanConfig::double_faults for schedules
  /// that kill two sites at once.
  int parities = 1;
  /// RADD groups in the volume (§4 sharding). 1 = the classic single-group
  /// harness (bit-identical summaries to the pre-volume harness); N > 1
  /// spreads N*(G+2) logical drives round-robin over G+1+N sites, so every
  /// fault lands on a site serving several groups at once.
  int groups = 1;
  /// Placement of every group's rows. kRotated (default) is the classic
  /// harness, byte-identical to pre-placement builds; kDeclustered
  /// spreads each group's stripes over `sites` members via the seeded
  /// permutation tables (layout/placement.h).
  PlacementKind layout = PlacementKind::kRotated;
  /// Declustered only: cluster width C (members per group). 0 = the
  /// minimum, G + 1 + parities.
  int sites = 12;
  /// Online-expansion mode (declustered, single parity): mid-schedule a
  /// fresh site joins the cluster and every group expands onto it — the
  /// planned block moves migrate while faults and client traffic keep
  /// running (autopilot: paced by the sweeper; manual: pumped during the
  /// episode window and drained after repair). The acked-write ledger,
  /// the invariants and the moved-fraction bound (moves <= the added
  /// capacity share of physical blocks) must all hold across the epoch
  /// flip.
  bool expand = false;
  BlockNum rows = 12;
  size_t block_size = 256;
  int ops_per_episode = 24;
  FaultPlanConfig plan;  ///< members/rows are overwritten to match
  NodeConfig node;       ///< retry knobs; defaults shortened for test speed
  bool verbose = false;  ///< trace every op and fault to stderr

  /// Routes every protocol message through the packed frame codec
  /// (DesTransport: encode to bytes, CRC, decode, deliver). The codec is
  /// lossless, so a schedule's Summary must be byte-identical with this on
  /// or off — that equality, checked under full chaos, is the proof that
  /// serialization preserves every message of the real protocol. Codec
  /// counters land in ChaosReport::frames_encoded / frames_rejected (never
  /// in the Summary, precisely so the differential stays byte-exact).
  bool frame_codec = false;

  /// Self-healing mode: the harness injects faults but never repairs.
  /// Detection (heartbeats -> SiteStatusService declarations), restart
  /// handling and the paced background sweep bring the cluster back on
  /// their own, and each episode must *converge* — every site kUp with all
  /// traffic drained — within `convergence_budget` of sim-time or the
  /// schedule fails.
  bool autopilot = false;
  HeartbeatConfig heartbeat;  ///< detector knobs (autopilot)
  SweeperConfig sweeper;      ///< sweep pacing knobs (autopilot)
  /// Delay between the end of a crash/disaster episode and the rebooted
  /// process announcing itself (NotifyRestart).
  SimTime restart_delay = Millis(400);
  /// Sim-time allowance per episode for the control plane to converge.
  SimTime convergence_budget = Seconds(60);

  ChaosConfig() {
    node.retry_timeout = Millis(80);
    node.max_retries = 10;
    // Detection (suspect_after * interval + one probe interval ~ 0.8 s)
    // must beat the write give-up time ((max_retries + 1) * 4 *
    // retry_timeout = 3.52 s) so in-flight writes re-route to spares
    // instead of exhausting their retries.
    heartbeat.interval = Millis(200);
    heartbeat.suspect_after = 3;
  }
};

/// Outcome of one seeded schedule.
struct ChaosReport {
  uint64_t seed = 0;
  int groups = 1;    ///< volume width; Summary mentions it only when > 1
  int parities = 1;  ///< Summary says "scheme=pq" only when 2
  bool ok = false;
  std::string failure;  ///< first violated invariant (empty when ok)
  std::string plan;     ///< FaultPlan::ToString of the schedule
  uint64_t ops_issued = 0;
  uint64_t ops_acked = 0;
  uint64_t ops_failed = 0;  ///< completed with a non-OK status (allowed)
  uint64_t reads_validated = 0;
  SimTime end_time = 0;

  /// Batched-parity-mode metrics (all zero when batching is off; the
  /// Summary of an unbatched run is byte-identical to the pre-batching
  /// harness).
  bool batched = false;
  uint64_t batches_sent = 0;        ///< parity batch frames transmitted
  uint64_t batch_retransmits = 0;   ///< frames resent after ack timeout
  uint64_t batch_duplicates = 0;    ///< duplicate frames deduped by seq
  uint64_t parity_staged = 0;       ///< parity updates that rode a batch

  /// Frame-codec metrics (frame_codec mode; excluded from Summary so the
  /// codec-on/off differential compares byte-identical strings).
  bool frame_codec = false;
  uint64_t frames_encoded = 0;
  uint64_t frames_rejected = 0;  ///< must stay 0: the codec is lossless

  /// Per-kind fault accounting for the end-of-sweep table: how many
  /// faults of each kind were injected (second faults of double-failure
  /// episodes count separately) and how many the schedule survived (the
  /// episode's repair-and-check passed). Never part of Summary, so the
  /// replayability digest is unchanged.
  std::map<std::string, uint64_t> injected_by_kind;
  std::map<std::string, uint64_t> survived_by_kind;

  /// Placement metrics (defaults when the layout is rotated, so rotated
  /// Summaries stay byte-identical to pre-placement builds).
  bool declustered = false;
  int sites = 0;  ///< cluster width C of each declustered group
  /// Expansion-mode metrics (expand only).
  bool expanded = false;
  uint64_t expansion_moves = 0;    ///< blocks physically relocated
  uint64_t expansion_planned = 0;  ///< blocks the plans called for

  /// Autopilot-mode self-healing metrics (all zero otherwise).
  bool autopilot = false;
  SimTime convergence_max = 0;    ///< slowest episode's detect->up time
  SimTime convergence_total = 0;  ///< summed over episodes
  uint64_t sweep_rows = 0;        ///< rows repaired by the background sweep
  uint64_t false_suspicions = 0;  ///< detector false positives
  uint64_t stale_epoch_rejections = 0;  ///< messages fenced off by epochs

  /// Deterministic digest: two runs of the same seed must produce
  /// identical summaries (the replayability contract).
  std::string Summary() const;
};

/// Drives seeded fault schedules. Stateless between runs: each Run builds
/// its own simulator, cluster, network and protocol stack.
class ChaosHarness {
 public:
  explicit ChaosHarness(const ChaosConfig& config = {});

  /// Executes the schedule derived from `seed`.
  ChaosReport Run(uint64_t seed);

 private:
  struct RunState;
  ChaosConfig config_;
};

}  // namespace radd

#endif  // RADD_FAULT_CHAOS_H_
