#include "fault/netshim.h"

namespace radd {

LossyProxyConfig DefaultLossyMix(uint64_t seed) {
  LossyProxyConfig cfg;
  cfg.drop_p = 0.05;
  cfg.truncate_p = 0.02;
  cfg.bitflip_p = 0.03;
  cfg.duplicate_p = 0.05;
  cfg.delay_p = 0.05;
  cfg.max_delay_ms = 3;
  cfg.seed = seed;
  return cfg;
}

LossyNetProxy::LossyNetProxy(LossyProxyConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {}

FrameFaultPlan LossyNetProxy::OnFrame(const Message& msg, size_t frame_len) {
  (void)msg;
  std::lock_guard<std::mutex> lk(mu_);
  ++frames_seen_;
  FrameFaultPlan plan;
  if (cfg_.delay_p > 0 && rng_.Bernoulli(cfg_.delay_p)) {
    plan.delay_ms = static_cast<int>(
        rng_.UniformRange(1, static_cast<uint64_t>(cfg_.max_delay_ms)));
    ++planned_delays_;
  }
  if (cfg_.drop_p > 0 && rng_.Bernoulli(cfg_.drop_p)) {
    plan.drop = true;
    ++planned_drops_;
    return plan;
  }
  if (cfg_.truncate_p > 0 && rng_.Bernoulli(cfg_.truncate_p)) {
    // Cut anywhere in the frame, including mid-header.
    plan.truncate_at = 1 + rng_.Uniform(frame_len > 1 ? frame_len - 1 : 1);
    ++planned_truncations_;
    return plan;
  }
  if (cfg_.bitflip_p > 0 && rng_.Bernoulli(cfg_.bitflip_p)) {
    plan.bitflip_at = static_cast<int>(rng_.Uniform(frame_len * 8));
    ++planned_bitflips_;
    return plan;
  }
  if (cfg_.duplicate_p > 0 && rng_.Bernoulli(cfg_.duplicate_p)) {
    plan.duplicate = true;
    ++planned_dups_;
  }
  return plan;
}

}  // namespace radd
