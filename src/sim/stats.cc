#include "sim/stats.h"

#include <cmath>

namespace radd {

std::string OpCounts::ToFormula() const {
  std::string out;
  auto term = [&out](uint64_t n, const char* sym) {
    if (n == 0) return;
    if (!out.empty()) out += "+";
    if (n > 1) out += std::to_string(n) + "*";
    out += sym;
  };
  term(local_reads, "R");
  term(local_writes, "W");
  term(remote_reads, "RR");
  term(remote_writes, "RW");
  return out.empty() ? "0" : out;
}

double Stats::Mean(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = samples_.find(name);
  if (it == samples_.end() || it->second.empty()) return 0;
  double sum = 0;
  for (double v : it->second) sum += v;
  return sum / static_cast<double>(it->second.size());
}

double Stats::Percentile(const std::string& name, double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = samples_.find(name);
  if (it == samples_.end() || it->second.empty()) return 0;
  std::vector<double> v = it->second;
  std::sort(v.begin(), v.end());
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

}  // namespace radd
