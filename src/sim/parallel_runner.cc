#include "sim/parallel_runner.h"

#include "sim/thread_pool.h"

namespace radd {

void ParallelRunner::Map(int threads, int count,
                         const std::function<void(int)>& job) {
  if (count <= 0) return;
  if (threads <= 1 || count == 1) {
    for (int i = 0; i < count; ++i) job(i);
    return;
  }
  if (threads > count) threads = count;
  ThreadPool pool(threads);
  pool.ParallelFor(count, job);
}

}  // namespace radd
