#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

#include "sim/thread_pool.h"

namespace radd {

namespace {

/// Identifies the shard whose event the current OS thread is executing.
/// Keyed by simulator so independent simulators on sibling threads (the
/// chaos run farm) never see each other's context.
struct ExecContext {
  const Simulator* sim = nullptr;
  int shard = 0;
};
thread_local ExecContext tls_exec;

constexpr uint64_t kLocalIdMask = (uint64_t{1} << 48) - 1;

}  // namespace

Simulator::Simulator() : shards_(1) {}
Simulator::~Simulator() = default;

void Simulator::ConfigureShards(int num_shards, SimTime lookahead) {
  assert(num_shards >= 1);
  assert(num_shards == 1 || lookahead > 0);
  assert(pending() == 0 && events_executed() == 0);
  shards_.clear();
  shards_.resize(static_cast<size_t>(num_shards));
  lookahead_ = lookahead;
}

int Simulator::current_shard() const {
  return tls_exec.sim == this ? tls_exec.shard : 0;
}

SimTime Simulator::Now() const {
  if (tls_exec.sim == this) return shard(tls_exec.shard).now;
  if (shards_.size() == 1) return shards_[0].now;
  SimTime makespan = 0;
  for (const Shard& sh : shards_) makespan = std::max(makespan, sh.now);
  return makespan;
}

uint64_t Simulator::PushEvent(int s, SimTime when, SimTime sched,
                              SimTime sched2, SimTime sched3, Callback fn) {
  Shard& sh = shard(s);
  uint64_t local = sh.next_id++;
  sh.queue.push(
      Event{when, sched, sched2, sched3, sh.next_seq++, local, std::move(fn)});
  return (static_cast<uint64_t>(s) << kShardIdBits) | local;
}

uint64_t Simulator::At(SimTime when, Callback fn) {
  int s = current_shard();
  assert(when >= shard(s).now);
  return PushEvent(s, when, shard(s).now, shard(s).cur_sched,
                   shard(s).cur_sched2, std::move(fn));
}

uint64_t Simulator::AtShard(int s, SimTime when, Callback fn) {
  assert(s >= 0 && s < num_shards());
  if (tls_exec.sim == this && s != tls_exec.shard) {
    // Cross-shard schedule from inside an event. Buffer it; the barrier
    // merges all outboxes in (when, sched, sched2, src shard, src seq)
    // order, so the destination sees the same arrival sequence at any
    // thread count.
    Shard& src = shard(tls_exec.shard);
    assert(in_window_);
    assert(when >= src.now + lookahead_);
    src.outbox.push_back(OutboxEntry{when, src.now, src.cur_sched,
                                     src.cur_sched2, src.next_outbox_seq++,
                                     s, std::move(fn)});
    return 0;
  }
  // Same shard, or single-threaded setup before any run.
  assert(when >= shard(s).now);
  return PushEvent(s, when, shard(s).now, shard(s).cur_sched,
                   shard(s).cur_sched2, std::move(fn));
}

bool Simulator::Cancel(uint64_t event_id) {
  uint64_t local = event_id & kLocalIdMask;
  if (local == 0) return false;
  int s = static_cast<int>(event_id >> kShardIdBits);
  if (s >= num_shards()) return false;
  // Only the owning shard may cancel: a foreign shard's queue is being
  // mutated concurrently during parallel windows.
  assert(tls_exec.sim != this || tls_exec.shard == s);
  Shard& sh = shard(s);
  if (local >= sh.next_id) return false;
  return sh.cancelled.insert(local).second;
}

bool Simulator::StepOne() {
  Shard& sh = shards_[0];
  while (!sh.queue.empty()) {
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never compare the moved-from
    // element again.
    Event ev = std::move(const_cast<Event&>(sh.queue.top()));
    sh.queue.pop();
    auto it = sh.cancelled.find(ev.id);
    if (it != sh.cancelled.end()) {
      sh.cancelled.erase(it);
      continue;
    }
    assert(ev.when >= sh.now);
    sh.now = ev.when;
    sh.cur_sched = ev.sched;
    sh.cur_sched2 = ev.sched2;
    ++sh.events_executed;
    ev.fn();
    sh.cur_sched = 0;
    sh.cur_sched2 = 0;
    return true;
  }
  return false;
}

bool Simulator::RunShardWindow(int s, SimTime bound) {
  Shard& sh = shard(s);
  ExecContext saved = tls_exec;
  tls_exec = ExecContext{this, s};
  bool ran = false;
  while (!sh.queue.empty() && sh.queue.top().when < bound) {
    Event ev = std::move(const_cast<Event&>(sh.queue.top()));
    sh.queue.pop();
    auto it = sh.cancelled.find(ev.id);
    if (it != sh.cancelled.end()) {
      sh.cancelled.erase(it);
      continue;
    }
    assert(ev.when >= sh.now);
    sh.now = ev.when;
    sh.cur_sched = ev.sched;
    sh.cur_sched2 = ev.sched2;
    ++sh.events_executed;
    ev.fn();
    sh.cur_sched = 0;
    sh.cur_sched2 = 0;
    ran = true;
  }
  tls_exec = saved;
  return ran;
}

void Simulator::MergeOutboxes() {
  struct Item {
    SimTime when;
    SimTime sched;
    SimTime sched2;
    SimTime sched3;
    int src;
    uint64_t seq;
    int dst;
    Callback fn;
  };
  std::vector<Item> items;
  for (int s = 0; s < num_shards(); ++s) {
    for (OutboxEntry& e : shard(s).outbox) {
      items.push_back(Item{e.when, e.sched, e.sched2, e.sched3, s, e.seq,
                           e.dst, std::move(e.fn)});
    }
    shard(s).outbox.clear();
  }
  // The sort key mirrors the queue comparator so destination seqs (the
  // final tie-break) are assigned in a globally consistent order.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.sched != b.sched) return a.sched < b.sched;
    if (a.sched2 != b.sched2) return a.sched2 < b.sched2;
    if (a.sched3 != b.sched3) return a.sched3 < b.sched3;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (Item& item : items) {
    // Window safety: every buffered event lands at or beyond the window
    // bound, so no destination clock has passed it.
    assert(item.when >= shard(item.dst).now);
    PushEvent(item.dst, item.when, item.sched, item.sched2, item.sched3,
              std::move(item.fn));
  }
}

SimTime Simulator::RunWindowed(ThreadPool* pool) {
  const int n = num_shards();
  assert(lookahead_ > 0);
  for (;;) {
    bool any = false;
    SimTime earliest = 0;
    for (int s = 0; s < n; ++s) {
      const Shard& sh = shard(s);
      if (sh.queue.empty()) continue;
      SimTime w = sh.queue.top().when;
      if (!any || w < earliest) {
        earliest = w;
        any = true;
      }
    }
    if (!any) break;
    // Conservative window [earliest, earliest + lookahead): any message an
    // event in the window sends cross-shard is delivered at
    // sender_now + lookahead >= earliest + lookahead, i.e. beyond the
    // bound, so shards cannot affect each other inside the window.
    SimTime bound = earliest + lookahead_;
    in_window_ = true;
    if (pool != nullptr) {
      pool->ParallelFor(n, [this, bound](int s) { RunShardWindow(s, bound); });
    } else {
      for (int s = 0; s < n; ++s) RunShardWindow(s, bound);
    }
    in_window_ = false;
    MergeOutboxes();
  }
  SimTime makespan = 0;
  for (int s = 0; s < n; ++s) makespan = std::max(makespan, shard(s).now);
  return makespan;
}

SimTime Simulator::Run() {
  if (num_shards() == 1) {
    while (StepOne()) {
    }
    return shards_[0].now;
  }
  return RunWindowed(nullptr);
}

SimTime Simulator::RunParallel(int threads) {
  if (num_shards() == 1) return Run();
  if (threads <= 1) return RunWindowed(nullptr);
  threads = std::min(threads, num_shards());
  ThreadPool pool(threads);
  return RunWindowed(&pool);
}

SimTime Simulator::RunUntil(SimTime deadline) {
  assert(num_shards() == 1);
  Shard& sh = shards_[0];
  while (!sh.queue.empty() && sh.queue.top().when <= deadline) {
    if (!StepOne()) break;
  }
  if (sh.now < deadline) sh.now = deadline;
  return sh.now;
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& done) {
  assert(num_shards() == 1);
  if (done()) return true;
  while (StepOne()) {
    if (done()) return true;
  }
  return false;
}

uint64_t Simulator::events_executed() const {
  uint64_t total = 0;
  for (const Shard& sh : shards_) total += sh.events_executed;
  return total;
}

size_t Simulator::pending() const {
  size_t total = 0;
  for (const Shard& sh : shards_) total += sh.queue.size();
  return total;
}

}  // namespace radd
