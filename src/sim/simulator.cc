#include "sim/simulator.h"

#include <cassert>

namespace radd {

uint64_t Simulator::At(SimTime when, Callback fn) {
  assert(when >= now_);
  uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

bool Simulator::Cancel(uint64_t event_id) {
  if (event_id == 0 || event_id >= next_id_) return false;
  return cancelled_.insert(event_id).second;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never compare the moved-from
    // element again.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.when >= now_);
    now_ = ev.when;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (!Step()) break;
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& done) {
  if (done()) return true;
  while (Step()) {
    if (done()) return true;
  }
  return false;
}

}  // namespace radd
