// The embarrassingly-parallel run farm: executes independent whole
// simulations (chaos seeds, bench repetitions) on concurrent OS threads.
//
// Isolation contract: each job must build its own Simulator / Network /
// Cluster / node stack and write results only into its own pre-allocated
// slot (e.g. results[i]). Jobs share nothing mutable except internally
// synchronized utilities (Stats counters, BlockArena — see their
// headers). Under that contract every job is deterministic in its inputs
// alone, so a parallel sweep produces exactly the per-job results of a
// serial sweep, in any order of completion.
//
// `threads <= 1` runs the jobs serially on the calling thread in index
// order — the bit-identical fallback the determinism oracle compares
// against.

#ifndef RADD_SIM_PARALLEL_RUNNER_H_
#define RADD_SIM_PARALLEL_RUNNER_H_

#include <functional>

namespace radd {

class ParallelRunner {
 public:
  /// Runs job(i) for every i in [0, count) on up to `threads` OS threads
  /// (including the caller). Blocks until all jobs finish; the caller
  /// observes all job writes afterwards.
  static void Map(int threads, int count, const std::function<void(int)>& job);
};

}  // namespace radd

#endif  // RADD_SIM_PARALLEL_RUNNER_H_
