// Deterministic discrete-event simulation engine, shardable for parallel
// execution.
//
// The whole distributed system — sites, disks, network links — runs inside
// one Simulator. Time is virtual (microsecond ticks); an event is a
// callback scheduled at an absolute tick. Events at the same tick fire in
// scheduling order, so runs are bit-for-bit reproducible.
//
// Sharding (DESIGN.md §12): the event space can be partitioned into N
// shards, each with its own event queue and virtual clock. The intended
// partition is one shard per simulated site: everything a site's events
// touch (its disks, its protocol state, its UID source) is confined to its
// shard, and the only cross-shard interaction is message delivery, which
// always pays at least the network's one-way latency. That latency is the
// classic conservative-PDES *lookahead*: within a synchronization window
// [T, T + lookahead) no shard can receive a new event from another shard
// earlier than the window's end, so all shards may execute their local
// events for the window concurrently. Cross-shard schedules made during a
// window are buffered in per-shard outboxes and merged at the barrier in a
// deterministic order — (when, scheduling history, source shard, source
// sequence) — so the simulated outcome is identical at every thread count,
// including one.
//
// The unsharded simulator (the default) is byte-for-byte the engine this
// repo has always had: one queue, one clock, events totally ordered by
// (when, schedule order).
//
// Confinement contract for sharded execution: an event running on shard s
// may touch only state owned by shard s; it may schedule onto its own
// shard freely (At/Schedule) and onto other shards only via AtShard with a
// delay of at least the configured lookahead. Shared mutable state that
// cannot be partitioned (stats counters, buffer arenas) must be internally
// synchronized — see sim/stats.h and common/block_arena.h.

#ifndef RADD_SIM_SIMULATOR_H_
#define RADD_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace radd {

/// Virtual time in microseconds since simulation start.
using SimTime = uint64_t;

/// Conversion helpers for the units the paper speaks in.
constexpr SimTime Micros(uint64_t us) { return us; }
constexpr SimTime Millis(uint64_t ms) { return ms * 1000; }
constexpr SimTime Seconds(uint64_t s) { return s * 1000 * 1000; }
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

class ThreadPool;

/// The event loop. Single-threaded by default; with ConfigureShards the
/// queue splits per shard and RunParallel executes conservative windows on
/// a thread pool. Determinism holds in every mode: the sharded engine's
/// outcome does not depend on the thread count.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Splits the event space into `num_shards` independent queues with the
  /// given conservative lookahead (the minimum cross-shard scheduling
  /// delay; in this repo, the network's one-way latency). Call once, on a
  /// simulator with no pending events. One shard is the unsharded engine.
  void ConfigureShards(int num_shards, SimTime lookahead);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  SimTime lookahead() const { return lookahead_; }

  /// Shard whose event is currently executing; 0 outside event execution
  /// (setup code schedules into shard 0 unless it uses AtShard).
  int current_shard() const;

  /// Current virtual time: the executing shard's clock during an event,
  /// the max over shards (simulation makespan so far) outside execution.
  SimTime Now() const;

  /// Schedules `fn` to run `delay` ticks from now on the current shard.
  /// Returns an id usable with Cancel().
  uint64_t Schedule(SimTime delay, Callback fn) {
    return At(Now() + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (>= Now()) on the current
  /// shard.
  uint64_t At(SimTime when, Callback fn);

  /// Schedules onto an explicit shard. From inside an event on another
  /// shard this is a cross-shard schedule: during parallel windows it is
  /// buffered and merged at the next barrier, and `when` must be at least
  /// lookahead past the sending shard's clock. Cross-shard events cannot
  /// be cancelled (the id belongs to the destination shard's namespace
  /// and is not returned); same-shard calls behave exactly like At().
  uint64_t AtShard(int shard, SimTime when, Callback fn);

  /// Cancels a pending event scheduled from this shard. Returns false if
  /// the event already fired or was cancelled. O(1) — the event is
  /// tombstoned, not removed.
  bool Cancel(uint64_t event_id);

  /// Runs events until every queue is empty. Returns the final time.
  /// Sharded simulators execute the same conservative windows as
  /// RunParallel, on the calling thread.
  SimTime Run();

  /// Sharded execution on `threads` worker threads (clamped to the shard
  /// count; 1 falls back to Run()). Returns the final time. The simulated
  /// outcome is identical for every `threads` value.
  SimTime RunParallel(int threads);

  /// Runs events with time <= `deadline`; leaves later events queued and
  /// advances Now() to `deadline` (even if idle earlier). Returns Now().
  /// Unsharded simulators only.
  SimTime RunUntil(SimTime deadline);

  /// Runs until `done` returns true (checked after each event) or the
  /// queue empties. Returns true iff `done` was satisfied. Unsharded
  /// simulators only.
  bool RunUntilPredicate(const std::function<bool()>& done);

  /// Number of events executed since construction (all shards).
  uint64_t events_executed() const;

  /// Number of events currently pending (including tombstoned ones).
  size_t pending() const;

 private:
  struct Event {
    SimTime when;
    /// Three levels of scheduling history, the tie-break at equal `when`:
    /// `sched` is the virtual time at which the event was scheduled,
    /// `sched2` the time at which the *scheduling event* was itself
    /// scheduled, `sched3` one hop further up (0 at setup code). In the
    /// monolithic queue, same-tick events fire in global schedule order,
    /// which is exactly (sched, then the schedulers' own order at that
    /// tick, recursively); carrying a bounded slice of that ancestry lets
    /// the sharded merge reproduce the monolithic order for cross-shard
    /// deliveries whose causal histories diverge within three hops —
    /// deeper ties fall back to source-shard order and may legally differ
    /// from the monolithic interleaving (DESIGN.md §12 records the one
    /// shipped workload where that happens). On a single shard execution
    /// order makes (sched, sched2, sched3) nondecreasing in push order,
    /// so (when, sched.., seq) ordering equals the classic (when, seq)
    /// byte for byte.
    SimTime sched;
    SimTime sched2;
    SimTime sched3;
    uint64_t seq;  // final tie-break: FIFO within a tick, per shard
    uint64_t id;   // shard-local id
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.sched != b.sched) return a.sched > b.sched;
      if (a.sched2 != b.sched2) return a.sched2 > b.sched2;
      if (a.sched3 != b.sched3) return a.sched3 > b.sched3;
      return a.seq > b.seq;
    }
  };
  /// A cross-shard schedule buffered during a parallel window.
  struct OutboxEntry {
    SimTime when;
    SimTime sched;   // sending shard's clock at the schedule call
    SimTime sched2;  // the sending event's own sched
    SimTime sched3;  // the sending event's own sched2
    uint64_t seq;    // per-source monotone: merge tie-break
    int dst;
    Callback fn;
  };
  struct Shard {
    SimTime now = 0;
    /// `sched` of the event currently executing on this shard (0 outside
    /// execution): becomes `sched2` of anything that event schedules.
    SimTime cur_sched = 0;
    SimTime cur_sched2 = 0;
    uint64_t next_seq = 0;
    uint64_t next_id = 1;
    uint64_t events_executed = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue;
    std::unordered_set<uint64_t> cancelled;
    /// Cross-shard schedules made by this shard's events in the current
    /// window; drained at the barrier. Only the owning worker touches it.
    std::vector<OutboxEntry> outbox;
    uint64_t next_outbox_seq = 0;
  };

  static constexpr int kShardIdBits = 48;

  Shard& shard(int i) { return shards_[static_cast<size_t>(i)]; }
  const Shard& shard(int i) const { return shards_[static_cast<size_t>(i)]; }

  uint64_t PushEvent(int s, SimTime when, SimTime sched, SimTime sched2,
                     SimTime sched3, Callback fn);
  bool StepOne();  // unsharded: executes one event; false if queue empty
  /// Executes one shard's events with when < bound (its own new events
  /// included). Returns true if any event ran.
  bool RunShardWindow(int s, SimTime bound);
  /// Drains all outboxes into destination queues in deterministic order.
  void MergeOutboxes();
  SimTime RunWindowed(ThreadPool* pool);

  SimTime lookahead_ = 0;
  std::vector<Shard> shards_;
  /// True while RunWindowed is between barriers (cross-shard schedules
  /// must buffer instead of touching foreign queues).
  bool in_window_ = false;
};

}  // namespace radd

#endif  // RADD_SIM_SIMULATOR_H_
