// Deterministic discrete-event simulation engine.
//
// The whole distributed system — sites, disks, network links — runs inside
// one Simulator. Time is virtual (microsecond ticks); an event is a
// callback scheduled at an absolute tick. Events at the same tick fire in
// scheduling order, so runs are bit-for-bit reproducible.

#ifndef RADD_SIM_SIMULATOR_H_
#define RADD_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace radd {

/// Virtual time in microseconds since simulation start.
using SimTime = uint64_t;

/// Conversion helpers for the units the paper speaks in.
constexpr SimTime Micros(uint64_t us) { return us; }
constexpr SimTime Millis(uint64_t ms) { return ms * 1000; }
constexpr SimTime Seconds(uint64_t s) { return s * 1000 * 1000; }
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

/// The event loop. Not thread-safe by design: determinism requires a single
/// logical thread of control.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` ticks from now. Returns an id usable
  /// with Cancel().
  uint64_t Schedule(SimTime delay, Callback fn) {
    return At(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (>= Now()).
  uint64_t At(SimTime when, Callback fn);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was cancelled. O(1) — the event is tombstoned, not removed.
  bool Cancel(uint64_t event_id);

  /// Runs events until the queue is empty. Returns the final time.
  SimTime Run();

  /// Runs events with time <= `deadline`; leaves later events queued and
  /// advances Now() to `deadline` (even if idle earlier). Returns Now().
  SimTime RunUntil(SimTime deadline);

  /// Runs until `done` returns true (checked after each event) or the
  /// queue empties. Returns true iff `done` was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& done);

  /// Number of events executed since construction.
  uint64_t events_executed() const { return events_executed_; }

  /// Number of events currently pending (including tombstoned ones).
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // tie-break: FIFO within a tick
    uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool Step();  // executes one event; returns false if queue empty

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<uint64_t> cancelled_;
};

}  // namespace radd

#endif  // RADD_SIM_SIMULATOR_H_
