// A small fixed-size worker pool for data-parallel loops.
//
// Used by Simulator::RunParallel to execute one conservative window across
// shards, and by ParallelRunner to farm out independent whole simulations
// (chaos seeds, bench repetitions). Work distribution is a shared atomic
// index, so uneven shards load-balance; completion is a full barrier, so
// the caller observes all worker writes after ParallelFor returns
// (mutex/condition-variable synchronization establishes the
// happens-before edges both ways).

#ifndef RADD_SIM_THREAD_POOL_H_
#define RADD_SIM_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace radd {

class ThreadPool {
 public:
  /// Creates a pool that runs loops on `threads` OS threads total: the
  /// calling thread participates, so `threads - 1` workers are spawned.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads a loop runs on (including the caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n), distributed dynamically across the
  /// pool. Blocks until all iterations finish. Not reentrant: one loop at
  /// a time, always driven from the same (owning) thread.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();
  /// Claims and runs iterations until the index range is exhausted.
  void RunIndices();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  uint64_t generation_ = 0;  // bumped per ParallelFor; wakes workers
  int active_ = 0;           // workers still inside the current loop
  bool stop_ = false;
  int n_ = 0;
  const std::function<void(int)>* fn_ = nullptr;
  std::atomic<int> next_index_{0};
};

}  // namespace radd

#endif  // RADD_SIM_THREAD_POOL_H_
