// Lightweight metrics: named counters and value distributions.
//
// The benchmark harnesses read these to produce the paper's tables; the
// op-count accounting of Figure 3 additionally uses the typed OpCounts
// struct, which is what the formulas are expressed in.
//
// Thread-safety: internally synchronized, because one Stats object is
// shared by every site in a node system and sites execute concurrently
// under the sharded simulator (sim/simulator.h). Interned counters are
// lock-free atomics — the hot path is a single fetch_add. The string-keyed
// operations (Add, Intern, Observe, readers) take a mutex; they are cold
// (setup, rare protocol events, post-run reporting). Counts are exact but
// carry no cross-counter ordering; read them when the simulation is
// quiescent, as the harnesses do.

#ifndef RADD_SIM_STATS_H_
#define RADD_SIM_STATS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace radd {

/// Counts of the four physical operation kinds of Table 1.
struct OpCounts {
  uint64_t local_reads = 0;    ///< cost R
  uint64_t local_writes = 0;   ///< cost W
  uint64_t remote_reads = 0;   ///< cost RR
  uint64_t remote_writes = 0;  ///< cost RW

  OpCounts& operator+=(const OpCounts& o) {
    local_reads += o.local_reads;
    local_writes += o.local_writes;
    remote_reads += o.remote_reads;
    remote_writes += o.remote_writes;
    return *this;
  }
  friend OpCounts operator-(OpCounts a, const OpCounts& b) {
    a.local_reads -= b.local_reads;
    a.local_writes -= b.local_writes;
    a.remote_reads -= b.remote_reads;
    a.remote_writes -= b.remote_writes;
    return a;
  }
  friend bool operator==(const OpCounts&, const OpCounts&) = default;

  uint64_t Total() const {
    return local_reads + local_writes + remote_reads + remote_writes;
  }

  /// Cost in milliseconds under a {R, W, RR, RW} model.
  double CostMs(double r, double w, double rr, double rw) const {
    return local_reads * r + local_writes * w + remote_reads * rr +
           remote_writes * rw;
  }

  /// "aR + bW + cRR + dRW" with zero terms omitted ("0" if all zero).
  std::string ToFormula() const;
};

/// A bag of named counters plus simple distributions.
class Stats {
 public:
  /// A stable handle to one named counter. Hot paths that would otherwise
  /// rebuild the key string per event (e.g. "net.bytes." + type on every
  /// send) intern the counter once and bump through the pointer instead.
  /// Bumps through the handle are lock-free atomic adds.
  using Counter = std::atomic<uint64_t>*;
  // The shard-confinement rule (simulator.h) allows shared state only when
  // it synchronizes internally without blocking the hot path.
  static_assert(std::atomic<uint64_t>::is_always_lock_free,
                "interned counters must be lock-free for concurrent shards");

  void Add(const std::string& name, uint64_t delta = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }
  /// Returns a handle to the named counter, creating it at zero. The
  /// handle stays valid for the lifetime of this Stats object — counters_
  /// is a node-based map, and Reset() zeroes values in place rather than
  /// erasing them.
  Counter Intern(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return &counters_[name];
  }
  uint64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.load();
  }
  void Observe(const std::string& name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_[name].push_back(value);
  }
  /// Mean of observed values; 0 if none.
  double Mean(const std::string& name) const;
  /// p-th percentile (0..100) of observed values; 0 if none.
  double Percentile(const std::string& name, double p) const;
  size_t SampleCount(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = samples_.find(name);
    return it == samples_.end() ? 0 : it->second.size();
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    // Zero in place (not clear): interned Counter handles must survive.
    for (auto& [name, value] : counters_) value = 0;
    samples_.clear();
  }
  /// Snapshot of every counter, for post-run reporting.
  std::map<std::string, uint64_t> counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, uint64_t> out;
    for (const auto& [name, value] : counters_) out[name] = value.load();
    return out;
  }

 private:
  mutable std::mutex mu_;  // guards map structure and samples_
  std::map<std::string, std::atomic<uint64_t>> counters_;
  std::map<std::string, std::vector<double>> samples_;
};

}  // namespace radd

#endif  // RADD_SIM_STATS_H_
