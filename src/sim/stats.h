// Lightweight metrics: named counters and value distributions.
//
// The benchmark harnesses read these to produce the paper's tables; the
// op-count accounting of Figure 3 additionally uses the typed OpCounts
// struct, which is what the formulas are expressed in.

#ifndef RADD_SIM_STATS_H_
#define RADD_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace radd {

/// Counts of the four physical operation kinds of Table 1.
struct OpCounts {
  uint64_t local_reads = 0;    ///< cost R
  uint64_t local_writes = 0;   ///< cost W
  uint64_t remote_reads = 0;   ///< cost RR
  uint64_t remote_writes = 0;  ///< cost RW

  OpCounts& operator+=(const OpCounts& o) {
    local_reads += o.local_reads;
    local_writes += o.local_writes;
    remote_reads += o.remote_reads;
    remote_writes += o.remote_writes;
    return *this;
  }
  friend OpCounts operator-(OpCounts a, const OpCounts& b) {
    a.local_reads -= b.local_reads;
    a.local_writes -= b.local_writes;
    a.remote_reads -= b.remote_reads;
    a.remote_writes -= b.remote_writes;
    return a;
  }
  friend bool operator==(const OpCounts&, const OpCounts&) = default;

  uint64_t Total() const {
    return local_reads + local_writes + remote_reads + remote_writes;
  }

  /// Cost in milliseconds under a {R, W, RR, RW} model.
  double CostMs(double r, double w, double rr, double rw) const {
    return local_reads * r + local_writes * w + remote_reads * rr +
           remote_writes * rw;
  }

  /// "aR + bW + cRR + dRW" with zero terms omitted ("0" if all zero).
  std::string ToFormula() const;
};

/// A bag of named counters plus simple distributions.
class Stats {
 public:
  /// A stable handle to one named counter. Hot paths that would otherwise
  /// rebuild the key string per event (e.g. "net.bytes." + type on every
  /// send) intern the counter once and bump through the pointer instead.
  using Counter = uint64_t*;

  void Add(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }
  /// Returns a handle to the named counter, creating it at zero. The
  /// handle stays valid for the lifetime of this Stats object — counters_
  /// is a node-based map, and Reset() zeroes values in place rather than
  /// erasing them.
  Counter Intern(const std::string& name) { return &counters_[name]; }
  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  void Observe(const std::string& name, double value) {
    samples_[name].push_back(value);
  }
  /// Mean of observed values; 0 if none.
  double Mean(const std::string& name) const;
  /// p-th percentile (0..100) of observed values; 0 if none.
  double Percentile(const std::string& name, double p) const;
  size_t SampleCount(const std::string& name) const {
    auto it = samples_.find(name);
    return it == samples_.end() ? 0 : it->second.size();
  }
  void Reset() {
    // Zero in place (not clear): interned Counter handles must survive.
    for (auto& [name, value] : counters_) value = 0;
    samples_.clear();
  }
  const std::map<std::string, uint64_t>& counters() const {
    return counters_;
  }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, std::vector<double>> samples_;
};

}  // namespace radd

#endif  // RADD_SIM_STATS_H_
