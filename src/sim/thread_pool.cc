#include "sim/thread_pool.h"

namespace radd {

ThreadPool::ThreadPool(int threads) {
  int workers = threads - 1;
  if (workers < 0) workers = 0;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunIndices() {
  for (;;) {
    int i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    (*fn_)(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this, seen] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    RunIndices();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty()) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    n_ = n;
    fn_ = &fn;
    next_index_.store(0, std::memory_order_relaxed);
    active_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_ready_.notify_all();
  RunIndices();  // the owning thread pulls its share
  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [this] { return active_ == 0; });
    fn_ = nullptr;
  }
}

}  // namespace radd
